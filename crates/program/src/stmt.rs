//! Program statements as transition formulas.
//!
//! A [`Statement`] is one letter of the program alphabet. Simple statements
//! (`assume`, assignment, `havoc`) have a single internal path; an `atomic`
//! block is a single letter whose relation is the *disjunction over the
//! block's internal paths* (branching inside an atomic block is allowed,
//! loops are not — the frontend enforces this).
//!
//! Two views of a statement's semantics are provided:
//!
//! * [`Statement::encode_ssa`] — the relation as an SSA-indexed formula,
//!   used for exact trace-feasibility checks and Hoare triple validity;
//! * [`Statement::post_image`] — the strongest postcondition on a DNF over
//!   *program* variables, used by the interpolation engine.

use crate::thread::ThreadId;
use crate::var::Versions;
use smt::cube::Dnf;
use smt::linear::{LinExpr, VarId};
use smt::term::{Term, TermId, TermPool};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// An indivisible step inside a statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimpleStmt {
    /// Blocks unless the guard holds.
    Assume(TermId),
    /// `x := e`.
    Assign(VarId, LinExpr),
    /// `x := *` (nondeterministic integer).
    Havoc(VarId),
}

/// One letter of the program alphabet: a statement owned by a thread.
///
/// # Example
///
/// ```
/// use smt::term::TermPool;
/// use smt::linear::LinExpr;
/// use program::stmt::{SimpleStmt, Statement};
/// use program::thread::ThreadId;
///
/// let mut pool = TermPool::new();
/// let x = pool.var("x");
/// let incr = Statement::simple(
///     ThreadId(0),
///     "x := x + 1",
///     SimpleStmt::Assign(x, LinExpr::var(x).add(&LinExpr::constant(1))),
///     &pool,
/// );
/// assert!(incr.writes().contains(&x));
/// ```
#[derive(Clone, Debug)]
pub struct Statement {
    thread: ThreadId,
    label: String,
    /// Internal paths; the statement's relation is their disjunction.
    paths: Vec<Vec<SimpleStmt>>,
    reads: BTreeSet<VarId>,
    writes: BTreeSet<VarId>,
}

impl Statement {
    /// A single-step statement.
    pub fn simple(thread: ThreadId, label: &str, stmt: SimpleStmt, pool: &TermPool) -> Statement {
        Statement::atomic(thread, label, vec![vec![stmt]], pool)
    }

    /// An atomic block given as its set of internal paths (each a sequence
    /// of simple statements). The relation is the disjunction of the paths'
    /// sequential compositions.
    ///
    /// # Panics
    ///
    /// Panics if `paths` is empty.
    pub fn atomic(
        thread: ThreadId,
        label: &str,
        paths: Vec<Vec<SimpleStmt>>,
        pool: &TermPool,
    ) -> Statement {
        assert!(!paths.is_empty(), "a statement needs at least one path");
        let mut reads = BTreeSet::new();
        let mut writes = BTreeSet::new();
        for path in &paths {
            for s in path {
                match s {
                    SimpleStmt::Assume(g) => reads.extend(pool.free_vars(*g)),
                    SimpleStmt::Assign(x, e) => {
                        reads.extend(e.vars());
                        writes.insert(*x);
                    }
                    SimpleStmt::Havoc(x) => {
                        writes.insert(*x);
                    }
                }
            }
        }
        Statement {
            thread,
            label: label.to_owned(),
            paths,
            reads,
            writes,
        }
    }

    /// The owning thread.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Human-readable label (used in traces and DOT dumps).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The internal paths.
    pub fn paths(&self) -> &[Vec<SimpleStmt>] {
        &self.paths
    }

    /// Variables read by any path (guards and right-hand sides).
    pub fn reads(&self) -> &BTreeSet<VarId> {
        &self.reads
    }

    /// Variables written by any path.
    pub fn writes(&self) -> &BTreeSet<VarId> {
        &self.writes
    }

    /// Variables accessed (read or written).
    pub fn accesses(&self) -> BTreeSet<VarId> {
        self.reads.union(&self.writes).copied().collect()
    }

    /// Encodes the statement's relation over SSA versions.
    ///
    /// Reads use the versions current in `versions` on entry; every written
    /// variable gets a fresh version (shared across paths). Havoc values
    /// become fresh auxiliary variables, free in the result (existential at
    /// the formula level).
    pub fn encode_ssa(&self, pool: &mut TermPool, versions: &mut Versions) -> TermId {
        let in_version: HashMap<VarId, VarId> = self
            .accesses()
            .iter()
            .map(|&v| (v, versions.current(v)))
            .collect();
        let out_version: HashMap<VarId, VarId> = self
            .writes
            .iter()
            .map(|&w| (w, versions.bump(pool, w)))
            .collect();

        let mut disjuncts = Vec::with_capacity(self.paths.len());
        for path in &self.paths {
            let mut sym = SymState::new(&in_version);
            sym.exec_path(pool, path);
            let mut conjuncts = sym.guards.clone();
            for (&w, &wv) in &out_version {
                let final_value = sym.value(w);
                let out = LinExpr::var(wv);
                conjuncts.push(pool.eq(&out, &final_value));
            }
            disjuncts.push(pool.and(conjuncts));
        }
        pool.or(disjuncts)
    }

    /// Strongest postcondition of `state` (a DNF over program variables).
    ///
    /// Returns the post-state DNF and whether it is exact over ℤ; an
    /// inexact result over-approximates (still sound for Hoare chains).
    pub fn post_image(&self, pool: &mut TermPool, state: &Dnf) -> (Dnf, bool) {
        let mut out = Dnf::bottom();
        let mut exact = true;
        for path in &self.paths {
            let mut cur = state.clone();
            for s in path {
                let (next, e) = Self::post_simple(pool, &cur, s);
                cur = next;
                exact &= e;
            }
            out = out.or(cur);
        }
        out.prune_inconsistent();
        (out, exact)
    }

    fn post_simple(pool: &mut TermPool, state: &Dnf, s: &SimpleStmt) -> (Dnf, bool) {
        match s {
            SimpleStmt::Assume(g) => {
                let guard = Dnf::from_term(pool, *g);
                let exact = guard.is_exact();
                (state.and(&guard), exact)
            }
            SimpleStmt::Assign(x, e) => {
                let ghost = pool.fresh_var(&format!("{}!old", pool.var_name(*x)));
                let e_old = apply_to_expr(e, &HashMap::from([(*x, LinExpr::var(ghost))]));
                let mut cubes = Vec::new();
                let mut exact = true;
                for cube in state.cubes() {
                    let Some(shifted) = cube.substitute(*x, &LinExpr::var(ghost)) else {
                        continue;
                    };
                    let lhs = LinExpr::var(*x);
                    let eq =
                        smt::linear::LinearConstraint::new(lhs.sub(&e_old), smt::linear::Rel::Eq0);
                    let mut c = shifted;
                    if !c.add(eq) {
                        continue;
                    }
                    let (projected, e_ok) = c.eliminate(ghost);
                    exact &= e_ok;
                    if let Some(p) = projected {
                        cubes.push(p);
                    }
                }
                let mut dnf = Dnf::bottom();
                for c in cubes {
                    dnf = dnf.or(Dnf::from_cube(c));
                }
                (dnf, exact)
            }
            SimpleStmt::Havoc(x) => {
                let ghost = pool.fresh_var(&format!("{}!old", pool.var_name(*x)));
                let mut dnf = Dnf::bottom();
                let mut exact = true;
                for cube in state.cubes() {
                    let Some(shifted) = cube.substitute(*x, &LinExpr::var(ghost)) else {
                        continue;
                    };
                    let (projected, e_ok) = shifted.eliminate(ghost);
                    exact &= e_ok;
                    if let Some(p) = projected {
                        dnf = dnf.or(Dnf::from_cube(p));
                    }
                }
                (dnf, exact)
            }
        }
    }

    /// The relation of this statement as a formula over program variables
    /// `V` (pre-state) and `primed` variables (post-state, written vars
    /// only), together with leftover auxiliary havoc variables.
    ///
    /// Used by the semantic commutativity check; see
    /// [`crate::commutativity`].
    pub fn relation(
        &self,
        pool: &mut TermPool,
        primed: &HashMap<VarId, VarId>,
    ) -> (TermId, Vec<VarId>) {
        let identity: HashMap<VarId, VarId> = self.accesses().iter().map(|&v| (v, v)).collect();
        let mut disjuncts = Vec::with_capacity(self.paths.len());
        let mut aux = Vec::new();
        for path in &self.paths {
            let mut sym = SymState::new(&identity);
            sym.exec_path(pool, path);
            let mut conjuncts = sym.guards.clone();
            for &w in &self.writes {
                let out = LinExpr::var(primed[&w]);
                let value = sym.value(w);
                conjuncts.push(pool.eq(&out, &value));
            }
            aux.extend(sym.aux.iter().copied());
            disjuncts.push(pool.and(conjuncts));
        }
        (pool.or(disjuncts), aux)
    }
}

/// The relation of the sequential composition `first; second` over program
/// variables `V` (pre) and `primed` variables (post).
///
/// `primed` must cover `writes(first) ∪ writes(second)`. Intermediate
/// values are composed symbolically (no existential mid-state variables);
/// only havoc values remain as auxiliary free variables, returned for the
/// caller to eliminate.
pub fn compose_relation(
    pool: &mut TermPool,
    first: &Statement,
    second: &Statement,
    primed: &HashMap<VarId, VarId>,
) -> (TermId, Vec<VarId>) {
    let mut writes: BTreeSet<VarId> = first.writes().clone();
    writes.extend(second.writes().iter().copied());
    let identity: HashMap<VarId, VarId> = first
        .accesses()
        .union(&second.accesses())
        .map(|&v| (v, v))
        .collect();
    let mut disjuncts = Vec::new();
    let mut aux = Vec::new();
    for p1 in first.paths() {
        for p2 in second.paths() {
            let mut sym = SymState::new(&identity);
            sym.exec_path(pool, p1);
            sym.exec_path(pool, p2);
            let mut conjuncts = sym.guards.clone();
            for &w in &writes {
                let out = LinExpr::var(primed[&w]);
                let value = sym.value(w);
                conjuncts.push(pool.eq(&out, &value));
            }
            aux.extend(sym.aux.iter().copied());
            disjuncts.push(pool.and(conjuncts));
        }
    }
    (pool.or(disjuncts), aux)
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Symbolic execution state for a single path: each program variable maps
/// to its current symbolic value (an expression over entry versions and
/// auxiliary havoc variables).
struct SymState {
    sym: HashMap<VarId, LinExpr>,
    guards: Vec<TermId>,
    aux: Vec<VarId>,
}

impl SymState {
    fn new(in_version: &HashMap<VarId, VarId>) -> SymState {
        SymState {
            sym: in_version
                .iter()
                .map(|(&v, &iv)| (v, LinExpr::var(iv)))
                .collect(),
            guards: Vec::new(),
            aux: Vec::new(),
        }
    }

    fn value(&self, v: VarId) -> LinExpr {
        self.sym.get(&v).cloned().unwrap_or_else(|| LinExpr::var(v))
    }

    fn exec_path(&mut self, pool: &mut TermPool, path: &[SimpleStmt]) {
        for s in path {
            match s {
                SimpleStmt::Assume(g) => {
                    let mapped = apply_to_term(pool, *g, &self.sym);
                    self.guards.push(mapped);
                }
                SimpleStmt::Assign(x, e) => {
                    let value = apply_to_expr(e, &self.sym);
                    self.sym.insert(*x, value);
                }
                SimpleStmt::Havoc(x) => {
                    let h = pool.fresh_var(&format!("{}!havoc", pool.var_name(*x)));
                    self.aux.push(h);
                    self.sym.insert(*x, LinExpr::var(h));
                }
            }
        }
    }
}

/// Simultaneous substitution of variables in a linear expression
/// (capture-free: all replacements are applied at once).
pub fn apply_to_expr(e: &LinExpr, map: &HashMap<VarId, LinExpr>) -> LinExpr {
    let mut out = LinExpr::constant(e.constant_term());
    for &(v, c) in e.terms() {
        match map.get(&v) {
            Some(r) => out = out.add(&r.scale(c)),
            None => out = out.add(&LinExpr::var(v).scale(c)),
        }
    }
    out
}

/// Simultaneous substitution of variables throughout a formula.
pub fn apply_to_term(pool: &mut TermPool, t: TermId, map: &HashMap<VarId, LinExpr>) -> TermId {
    match pool.term(t).clone() {
        Term::True | Term::False => t,
        Term::Atom(c) => {
            let expr = apply_to_expr(c.expr(), map);
            pool.atom(expr, c.rel())
        }
        Term::And(children) => {
            let mapped: Vec<TermId> = children
                .iter()
                .map(|&c| apply_to_term(pool, c, map))
                .collect();
            pool.and(mapped)
        }
        Term::Or(children) => {
            let mapped: Vec<TermId> = children
                .iter()
                .map(|&c| apply_to_term(pool, c, map))
                .collect();
            pool.or(mapped)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt::solver::{check, entails};

    fn t0() -> ThreadId {
        ThreadId(0)
    }

    #[test]
    fn read_write_sets() {
        let mut pool = TermPool::new();
        let x = pool.var("x");
        let y = pool.var("y");
        let g = pool.ge_const(y, 1);
        let s = Statement::atomic(
            t0(),
            "atomic",
            vec![vec![
                SimpleStmt::Assume(g),
                SimpleStmt::Assign(x, LinExpr::var(x).add(&LinExpr::constant(1))),
            ]],
            &pool,
        );
        assert_eq!(s.reads().iter().copied().collect::<Vec<_>>(), vec![x, y]);
        assert_eq!(s.writes().iter().copied().collect::<Vec<_>>(), vec![x]);
        assert_eq!(s.accesses().len(), 2);
    }

    #[test]
    fn encode_ssa_increment() {
        let mut pool = TermPool::new();
        let x = pool.var("x");
        let s = Statement::simple(
            t0(),
            "x := x + 1",
            SimpleStmt::Assign(x, LinExpr::var(x).add(&LinExpr::constant(1))),
            &pool,
        );
        let mut versions = Versions::new();
        let init = pool.eq_const(x, 5);
        let f = s.encode_ssa(&mut pool, &mut versions);
        let x1 = versions.current(x);
        assert_ne!(x1, x);
        // init ∧ f entails x1 = 6.
        let conj = pool.and([init, f]);
        let expected = pool.eq_const(x1, 6);
        assert!(entails(&mut pool, conj, expected));
    }

    #[test]
    fn encode_ssa_assume_blocks() {
        let mut pool = TermPool::new();
        let x = pool.var("x");
        let g = pool.ge_const(x, 10);
        let s = Statement::simple(t0(), "assume x >= 10", SimpleStmt::Assume(g), &pool);
        let mut versions = Versions::new();
        let f = s.encode_ssa(&mut pool, &mut versions);
        let low = pool.le_const(x, 5);
        assert!(check(&mut pool, &[f, low]).is_unsat());
        // Assume writes nothing: version unchanged.
        assert_eq!(versions.current(x), x);
    }

    #[test]
    fn encode_ssa_atomic_branching() {
        // The bluetooth Close block: pendingIo := pendingIo - 1;
        // if (pendingIo == 0) stoppingEvent := true;
        let mut pool = TermPool::new();
        let p = pool.var("pendingIo");
        let ev = pool.var("stoppingEvent");
        let dec = LinExpr::var(p).sub(&LinExpr::constant(1));
        let p_zero = pool.eq_const(p, 0);
        let p_nonzero = pool.not(p_zero);
        let close = Statement::atomic(
            t0(),
            "close",
            vec![
                vec![
                    SimpleStmt::Assign(p, dec.clone()),
                    SimpleStmt::Assume(p_zero),
                    SimpleStmt::Assign(ev, LinExpr::constant(1)),
                ],
                vec![SimpleStmt::Assign(p, dec), SimpleStmt::Assume(p_nonzero)],
            ],
            &pool,
        );
        // Note: the second path doesn't write `ev`; the encoding must frame
        // it to the *entry* value of ev.
        let mut versions = Versions::new();
        let p1init = pool.eq_const(p, 1);
        let ev0 = pool.eq_const(ev, 0);
        let pre = pool.and([p1init, ev0]);
        let f = close.encode_ssa(&mut pool, &mut versions);
        let p1 = versions.current(p);
        let ev1 = versions.current(ev);
        let conj = pool.and([pre, f]);
        // From pendingIo = 1: after close, pendingIo' = 0 and event' = 1.
        let want_p = pool.eq_const(p1, 0);
        let want_ev = pool.eq_const(ev1, 1);
        assert!(entails(&mut pool, conj, want_p));
        assert!(entails(&mut pool, conj, want_ev));
    }

    #[test]
    fn atomic_unwritten_path_frames_variable() {
        // Same block, starting from pendingIo = 5: event must stay 0.
        let mut pool = TermPool::new();
        let p = pool.var("pendingIo");
        let ev = pool.var("stoppingEvent");
        let dec = LinExpr::var(p).sub(&LinExpr::constant(1));
        let p_zero = pool.eq_const(p, 0);
        let p_nonzero = pool.not(p_zero);
        let close = Statement::atomic(
            t0(),
            "close",
            vec![
                vec![
                    SimpleStmt::Assign(p, dec.clone()),
                    SimpleStmt::Assume(p_zero),
                    SimpleStmt::Assign(ev, LinExpr::constant(1)),
                ],
                vec![SimpleStmt::Assign(p, dec), SimpleStmt::Assume(p_nonzero)],
            ],
            &pool,
        );
        let mut versions = Versions::new();
        let p5init = pool.eq_const(p, 5);
        let ev0 = pool.eq_const(ev, 0);
        let pre = pool.and([p5init, ev0]);
        let f = close.encode_ssa(&mut pool, &mut versions);
        let ev1 = versions.current(ev);
        let conj = pool.and([pre, f]);
        let want_ev = pool.eq_const(ev1, 0);
        assert!(entails(&mut pool, conj, want_ev));
    }

    #[test]
    fn encode_ssa_havoc_is_unconstrained() {
        let mut pool = TermPool::new();
        let x = pool.var("x");
        let s = Statement::simple(t0(), "havoc x", SimpleStmt::Havoc(x), &pool);
        let mut versions = Versions::new();
        let pre = pool.eq_const(x, 0);
        let f = s.encode_ssa(&mut pool, &mut versions);
        let x1 = versions.current(x);
        let arbitrary = pool.eq_const(x1, 42);
        // havoc can reach any value.
        assert!(check(&mut pool, &[pre, f, arbitrary]).is_sat());
    }

    #[test]
    fn post_image_increment() {
        let mut pool = TermPool::new();
        let x = pool.var("x");
        let s = Statement::simple(
            t0(),
            "x := x + 1",
            SimpleStmt::Assign(x, LinExpr::var(x).add(&LinExpr::constant(1))),
            &pool,
        );
        let init = pool.ge_const(x, 2);
        let state = Dnf::from_term(&pool, init);
        let (post, exact) = s.post_image(&mut pool, &state);
        assert!(exact);
        let t = post.to_term(&mut pool);
        let expected = pool.ge_const(x, 3);
        assert!(smt::equivalent(&mut pool, t, expected));
    }

    #[test]
    fn post_image_assume_intersects() {
        let mut pool = TermPool::new();
        let x = pool.var("x");
        let g = pool.le_const(x, 10);
        let s = Statement::simple(t0(), "assume", SimpleStmt::Assume(g), &pool);
        let init = pool.ge_const(x, 5);
        let state = Dnf::from_term(&pool, init);
        let (post, exact) = s.post_image(&mut pool, &state);
        assert!(exact);
        let t = post.to_term(&mut pool);
        let lo = pool.ge_const(x, 5);
        let hi = pool.le_const(x, 10);
        let expected = pool.and([lo, hi]);
        assert!(smt::equivalent(&mut pool, t, expected));
    }

    #[test]
    fn post_image_blocking_assume_is_bottom() {
        let mut pool = TermPool::new();
        let x = pool.var("x");
        let g = pool.ge_const(x, 10);
        let s = Statement::simple(t0(), "assume", SimpleStmt::Assume(g), &pool);
        let init = pool.le_const(x, 3);
        let state = Dnf::from_term(&pool, init);
        let (post, _) = s.post_image(&mut pool, &state);
        assert!(post.is_bottom());
    }

    #[test]
    fn post_image_havoc_forgets() {
        let mut pool = TermPool::new();
        let x = pool.var("x");
        let y = pool.var("y");
        let s = Statement::simple(t0(), "havoc x", SimpleStmt::Havoc(x), &pool);
        let both = {
            let a = pool.eq_const(x, 1);
            let b = pool.eq_const(y, 2);
            pool.and([a, b])
        };
        let state = Dnf::from_term(&pool, both);
        let (post, exact) = s.post_image(&mut pool, &state);
        assert!(exact);
        let t = post.to_term(&mut pool);
        let expected = pool.eq_const(y, 2);
        assert!(smt::equivalent(&mut pool, t, expected));
    }

    #[test]
    fn relation_composes_for_commutativity() {
        // x := x + 1 and y := y + 1 obviously commute; their relations over
        // a shared primed set must be conjoinable.
        let mut pool = TermPool::new();
        let x = pool.var("x");
        let y = pool.var("y");
        let sx = Statement::simple(
            t0(),
            "x+1",
            SimpleStmt::Assign(x, LinExpr::var(x).add(&LinExpr::constant(1))),
            &pool,
        );
        let xp = pool.var("x'");
        let primed = HashMap::from([(x, xp)]);
        let (rel, aux) = sx.relation(&mut pool, &primed);
        assert!(aux.is_empty());
        let pre = pool.eq_const(x, 1);
        let conj = pool.and([pre, rel]);
        let expected = pool.eq_const(xp, 2);
        assert!(entails(&mut pool, conj, expected));
        let _ = y;
    }
}
