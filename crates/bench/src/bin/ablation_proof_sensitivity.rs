//! **§8 ablation**: the impact of proof-sensitive (conditional)
//! commutativity. The paper reports: without it, 8 fewer programs solved,
//! proof sizes up 2.5–5 %, refinement rounds up 0.8–4.5 %, and ~44 GB more
//! memory across the suite.
//!
//! Run: `cargo run --release -p bench --bin ablation_proof_sensitivity`

use bench::{run_config, Aggregate};
use bench_suite::{Expected, Suite};
use gemcutter::verify::VerifierConfig;

fn main() {
    let corpus = bench::corpus();
    println!("Ablation: proof-sensitive commutativity on vs off (gemcutter-seq)\n");
    let with_ps = run_config(&corpus, &VerifierConfig::gemcutter_seq());
    let without_ps = run_config(
        &corpus,
        &VerifierConfig::gemcutter_seq().without_proof_sensitivity(),
    );

    #[allow(clippy::type_complexity)]
    let rows: [(&str, Box<dyn Fn(&bench::Run) -> bool>); 3] = [
        ("total", Box::new(|_: &bench::Run| true)),
        (
            "SV-COMP",
            Box::new(|r: &bench::Run| r.suite == Suite::SvComp),
        ),
        (
            "Weaver",
            Box::new(|r: &bench::Run| r.suite == Suite::Weaver),
        ),
    ];
    println!(
        "{:10} {:>10} {:>10} {:>12} {:>12} {:>10} {:>10} {:>12} {:>12}",
        "suite", "solved+", "solved-", "proof+", "proof-", "rounds+", "rounds-", "mem+", "mem-"
    );
    for (label, keep) in &rows {
        let a = Aggregate::of(with_ps.iter(), keep);
        let b = Aggregate::of(without_ps.iter(), keep);
        println!(
            "{label:10} {:>10} {:>10} {:>12} {:>12} {:>10} {:>10} {:>12} {:>12}",
            a.count, b.count, a.proof_size, b.proof_size, a.rounds, b.rounds, a.memory, b.memory
        );
    }

    // Proof size delta on correct programs solved by both.
    let a_safe = Aggregate::of(with_ps.iter(), |r| r.expected == Expected::Safe);
    let b_safe = Aggregate::of(without_ps.iter(), |r| r.expected == Expected::Safe);
    if a_safe.count > 0 && b_safe.count > 0 {
        let avg_a = a_safe.proof_size as f64 / a_safe.count as f64;
        let avg_b = b_safe.proof_size as f64 / b_safe.count as f64;
        println!();
        println!(
            "Average proof size (correct programs): with={avg_a:.2} without={avg_b:.2} ({:+.2} %)",
            (avg_b - avg_a) / avg_a * 100.0
        );
        println!("Paper shape: proof sizes and rounds grow slightly without proof-sensitivity;");
        println!("memory grows (the paper reports ~44 GB across its much larger suite).");
    }
}
