//! **Extension ablation**: strongest-postcondition chains vs. Farkas
//! sequence interpolants as the assertion generator (the paper's tool uses
//! solver-generated interpolants; this compares the two engines built
//! here).
//!
//! Run: `cargo run --release -p bench --bin ablation_interpolation`

use bench::{run_config, Aggregate};
use gemcutter::verify::VerifierConfig;

fn main() {
    let corpus = bench::corpus();
    println!("Ablation: sp-chain vs Farkas interpolation (gemcutter-seq)\n");
    let sp = run_config(&corpus, &VerifierConfig::gemcutter_seq());
    let farkas = run_config(
        &corpus,
        &VerifierConfig::gemcutter_seq().with_farkas_interpolation(),
    );
    println!(
        "{:12} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "engine", "solved", "rounds", "proof", "mem", "time"
    );
    for (name, runs) in [("sp-chain", &sp), ("farkas", &farkas)] {
        let agg = Aggregate::of(runs.iter(), |_| true);
        println!(
            "{name:12} {:>8} {:>10} {:>10} {:>12} {:>10}",
            agg.count,
            agg.rounds,
            agg.proof_size,
            agg.memory,
            bench::fmt_time(agg.time_s)
        );
    }
    let farkas_hits: usize = farkas
        .iter()
        .map(|r| r.outcome.stats.interpolation.farkas_chains)
        .sum();
    println!("\nCounterexamples interpolated via Farkas certificates: {farkas_hits}");
    println!(
        "(The rest fell back to sp-chains: disjunctive atomic blocks or ℤ-only infeasibility.)"
    );
}
