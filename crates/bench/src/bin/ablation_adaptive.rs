//! **Extension ablation**: classic (independent race) portfolio vs. the
//! shared-proof adaptive portfolio (the §8 Limitations direction: adjust
//! the preference order dynamically based on partial verification effort).
//!
//! Run: `cargo run --release -p bench --bin ablation_adaptive`

use bench_suite::Expected;
use gemcutter::portfolio::{adaptive_verify, default_portfolio, portfolio_verify};
use gemcutter::verify::Verdict;
use smt::term::TermPool;

fn main() {
    let corpus = bench::corpus();
    println!("Ablation: racing portfolio vs shared-proof adaptive portfolio\n");
    println!(
        "{:26} {:>14} {:>14} {:>12} {:>12}",
        "benchmark", "race rounds", "adaptive", "race visited", "adaptive"
    );
    let mut race_rounds = 0usize;
    let mut adaptive_rounds = 0usize;
    let mut race_visited = 0usize;
    let mut adaptive_visited = 0usize;
    let mut adaptive_solved = 0usize;
    let mut race_solved = 0usize;
    for b in &corpus {
        let mut pool = TermPool::new();
        let p = b.compile(&mut pool);
        // Racing model: every member runs to completion (sequential
        // emulation; cost = sum over members).
        let race = portfolio_verify(&mut pool, &p, &default_portfolio(), false);
        let race_total_rounds: usize = race.members.iter().map(|(_, o)| o.stats.rounds).sum();
        let race_total_visited: usize = race
            .members
            .iter()
            .map(|(_, o)| o.stats.visited_states)
            .sum();

        let mut pool2 = TermPool::new();
        let p2 = b.compile(&mut pool2);
        let (adaptive, _winner) = adaptive_verify(&mut pool2, &p2, &default_portfolio(), 300);

        let ok = |v: &Verdict| {
            matches!(
                (v, b.expected),
                (Verdict::Correct, Expected::Safe) | (Verdict::Incorrect { .. }, Expected::Unsafe)
            )
        };
        assert!(
            !matches!(&race.outcome.verdict, v if !ok(v) && !matches!(v, Verdict::GaveUp(_))),
            "race wrong on {}",
            b.name
        );
        assert!(
            !matches!(&adaptive.verdict, v if !ok(v) && !matches!(v, Verdict::GaveUp(_))),
            "adaptive wrong on {}",
            b.name
        );
        race_solved += usize::from(ok(&race.outcome.verdict));
        adaptive_solved += usize::from(ok(&adaptive.verdict));
        race_rounds += race_total_rounds;
        adaptive_rounds += adaptive.stats.rounds;
        race_visited += race_total_visited;
        adaptive_visited += adaptive.stats.visited_states;
        println!(
            "{:26} {:>14} {:>14} {:>12} {:>12}",
            b.name,
            race_total_rounds,
            adaptive.stats.rounds,
            race_total_visited,
            adaptive.stats.visited_states
        );
    }
    println!();
    println!(
        "Totals: rounds {race_rounds} (race) vs {adaptive_rounds} (adaptive); visited {race_visited} vs {adaptive_visited}; solved {race_solved} vs {adaptive_solved} of {}",
        corpus.len()
    );
    println!("Sharing the proof lets later engines skip work the first engine already justified.");
}
