//! The §6.1 membrane theory: Figure 4's two counterexamples showing that
//! *weakly persistent* sets alone allow unsound pruning on general
//! automata (Prop 6.5: the pruned edge set must also be a membrane), and
//! that Algorithm 1's sets are membranes on actual programs.

use automata::bitset::BitSet;
use automata::dfa::{Dfa, DfaBuilder};
use automata::explore::accepted_words;
use program::commutativity::{CommutativityLevel, CommutativityOracle};
use program::concurrent::{LetterId, Program};
use program::stmt::{SimpleStmt, Statement};
use program::thread::{Thread, ThreadId};
use reduction::mazurkiewicz::check_reduction_sound;
use reduction::order::SeqOrder;
use reduction::persistent::{MembraneMode, PersistentSets};
use smt::linear::LinExpr;
use smt::term::TermPool;

/// Letters as plain chars; full commutativity between 'a's and 'b'.
fn commute(x: char, y: char) -> bool {
    x != y
}

/// Figure 4(b): language {ab, b} (and a dead a-successor continuation).
/// The set {a} is weakly persistent at the initial state but NOT a
/// membrane; pruning the b-edge loses the class of the word "b".
#[test]
fn figure_4b_weakly_persistent_pruning_is_unsound_without_membrane() {
    // q0 --a--> q1 --b--> q2(acc);  q0 --b--> q3(acc)
    let mut b = DfaBuilder::new();
    let q0 = b.add_state(false);
    let q1 = b.add_state(false);
    let q2 = b.add_state(true);
    let q3 = b.add_state(true);
    b.add_transition(q0, 'a', q1);
    b.add_transition(q1, 'b', q2);
    b.add_transition(q0, 'b', q3);
    let full: Dfa<char> = b.build(q0);

    // Weak persistence of {a} at q0: every accepted word from q0 either
    // starts with a ∈ M, or is "b" whose only letter commutes with a —
    // the quantifier in Def. 6.1 is vacuously satisfied.
    // Membrane: FAILS — "b" contains no letter of {a}.
    // Prune accordingly: drop the b-edge at q0.
    let mut p = DfaBuilder::new();
    let p0 = p.add_state(false);
    let p1 = p.add_state(false);
    let p2 = p.add_state(true);
    p.add_transition(p0, 'a', p1);
    p.add_transition(p1, 'b', p2);
    let pruned: Dfa<char> = p.build(p0);

    let full_words = accepted_words(&full, 3);
    let pruned_words = accepted_words(&pruned, 3);
    let verdict = check_reduction_sound(&full_words, &pruned_words, commute);
    assert_eq!(
        verdict,
        Err(vec!['b']),
        "the class of the word b must be reported unrepresented"
    );
}

/// Figure 4(a), the ignoring problem: two states in an a-cycle, each with
/// a b-exit. Persistent sets {a1} and {a2} at the two states prune *all*
/// b-transitions — the pruned automaton accepts nothing although the
/// original language is nonempty.
#[test]
fn figure_4a_ignoring_problem() {
    // s0 --a1--> s1 --a2--> s0 (cycle); s0 --b--> acc; s1 --b--> acc.
    let mut b = DfaBuilder::new();
    let s0 = b.add_state(false);
    let s1 = b.add_state(false);
    let acc = b.add_state(true);
    b.add_transition(s0, 'x', s1); // a1
    b.add_transition(s1, 'y', s0); // a2
    b.add_transition(s0, 'b', acc);
    b.add_transition(s1, 'b', acc);
    let full: Dfa<char> = b.build(s0);

    // Prune b everywhere (the persistent sets {a1}/{a2} allow it when b
    // commutes with both, because no accepted word is ever reached to
    // contradict weak persistence... which is exactly the ignoring
    // problem).
    let mut p = DfaBuilder::new();
    let t0 = p.add_state(false);
    let t1 = p.add_state(false);
    p.add_transition(t0, 'x', t1);
    p.add_transition(t1, 'y', t0);
    let pruned: Dfa<char> = p.build(t0);

    assert!(!full.is_empty());
    assert!(pruned.is_empty(), "all accepting paths pruned");
    let verdict = check_reduction_sound(
        &accepted_words(&full, 3),
        &accepted_words(&pruned, 3),
        |x: char, y: char| (x == 'b') != (y == 'b') || commute(x, y),
    );
    assert!(verdict.is_err(), "the empty language is not a reduction");
}

/// Algorithm 1 on a *program* with the Figure 4(b) shape: thread 0 may
/// stop after one step (the "b" word corresponds to the other thread
/// finishing first). The computed membrane keeps enough edges that the
/// reduction stays sound.
#[test]
fn algorithm_1_sets_are_membranes_on_programs() {
    let mut pool = TermPool::new();
    let mut b = Program::builder("fig4-program");
    let x = pool.var("x");
    let y = pool.var("y");
    b.add_global(x, 0);
    b.add_global(y, 0);
    let a_letter = b.add_statement(Statement::simple(
        ThreadId(0),
        "a",
        SimpleStmt::Assign(x, LinExpr::constant(1)),
        &pool,
    ));
    let b_letter = b.add_statement(Statement::simple(
        ThreadId(1),
        "b",
        SimpleStmt::Assign(y, LinExpr::constant(1)),
        &pool,
    ));
    {
        let mut cfg = DfaBuilder::new();
        let entry = cfg.add_state(true); // may stop immediately
        let exit = cfg.add_state(true);
        cfg.add_transition(entry, a_letter, exit);
        b.add_thread(Thread::new("t0", cfg.build(entry), BitSet::new(2)));
    }
    {
        let mut cfg = DfaBuilder::new();
        let entry = cfg.add_state(false);
        let exit = cfg.add_state(true);
        cfg.add_transition(entry, b_letter, exit);
        b.add_thread(Thread::new("t1", cfg.build(entry), BitSet::new(2)));
    }
    let p = b.build(&mut pool);
    let mut oracle = CommutativityOracle::new(CommutativityLevel::Syntactic);
    let ps = PersistentSets::new(&mut pool, &p, &mut oracle);
    let q0 = p.initial_state();
    let m = ps.compute(&p, &q0, &SeqOrder::new(), 0, MembraneMode::Terminal);
    // The membrane must be nonempty; under the Terminal mode every
    // accepted word (both threads end at an accepting location) passes
    // through the active threads' actions.
    assert!(!m.is_empty());
    // Whichever single thread is chosen, its letter is on every accepted
    // word's path... for this program both threads must still move, so any
    // conflict-closed set of active threads is a membrane.
    assert!(m.contains(&LetterId(0)) || m.contains(&LetterId(1)));
}
