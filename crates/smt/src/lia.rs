//! Integer feasibility: rational simplex plus branch-and-bound.
//!
//! A conjunction of [`LinearConstraint`]s is first checked over ℚ. If the
//! rational model is integral we are done; otherwise we branch on a
//! fractional variable (`x ≤ ⌊v⌋` / `x ≥ ⌈v⌉`) up to a node budget.
//! Branch bounds are kept per variable and intersected, not stacked as
//! extra constraints, so node size (and thus node cost) stays flat even
//! on deep dives along unbounded directions.
//! Rational infeasibility soundly implies integer infeasibility; budget
//! exhaustion yields [`LiaResult::Unknown`], which callers must treat
//! conservatively.

use crate::linear::{LinExpr, LinearConstraint, NormalizedConstraint, Rel, VarId};

use crate::resource::{Category, ResourceGovernor};
use crate::simplex::{check_rational_governed, SimplexResult};
use std::collections::HashMap;

/// Outcome of an integer feasibility check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LiaResult {
    /// Feasible with an integer model.
    Sat(HashMap<VarId, i128>),
    /// Infeasible over ℤ.
    Unsat,
    /// Budget exhausted or arithmetic overflow — no verdict.
    Unknown,
}

impl LiaResult {
    /// `true` for [`LiaResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, LiaResult::Sat(_))
    }

    /// `true` for [`LiaResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, LiaResult::Unsat)
    }
}

/// Default branch-and-bound node budget.
pub const DEFAULT_BB_BUDGET: usize = 2_000;

/// Checks integer feasibility of the conjunction of `constraints`.
///
/// # Example
///
/// ```
/// use smt::linear::{LinExpr, LinearConstraint, NormalizedConstraint, Rel, VarId};
/// use smt::lia::{check_integer, LiaResult};
///
/// let x = VarId(0);
/// let mk = |e, r| match LinearConstraint::new(e, r) {
///     NormalizedConstraint::Constraint(c) => c,
///     _ => unreachable!(),
/// };
/// // 2x = 1 normalizes straight to unsat; try 2x = y ∧ y = 3 ∧ 0 ≤ x ≤ 2:
/// let y = VarId(1);
/// let c1 = mk(LinExpr::var(x).scale(2).sub(&LinExpr::var(y)), Rel::Eq0);
/// let c2 = mk(LinExpr::var(y).sub(&LinExpr::constant(3)), Rel::Eq0);
/// let c3 = mk(LinExpr::constant(0).sub(&LinExpr::var(x)), Rel::Le0);
/// let c4 = mk(LinExpr::var(x).sub(&LinExpr::constant(2)), Rel::Le0);
/// assert_eq!(check_integer(&[c1, c2, c3, c4]), LiaResult::Unsat);
/// ```
pub fn check_integer(constraints: &[LinearConstraint]) -> LiaResult {
    check_integer_governed(
        constraints,
        DEFAULT_BB_BUDGET,
        &ResourceGovernor::unlimited(),
    )
}

/// As [`check_integer`] with an explicit branch-and-bound node budget.
pub fn check_integer_with_budget(constraints: &[LinearConstraint], budget: usize) -> LiaResult {
    check_integer_governed(constraints, budget, &ResourceGovernor::unlimited())
}

/// As [`check_integer_with_budget`], charging `governor` one
/// [`Category::BranchNodes`] unit per branch-and-bound node (and
/// [`Category::SimplexPivots`] inside each relaxation). A tripped governor
/// aborts the search with [`LiaResult::Unknown`].
pub fn check_integer_governed(
    constraints: &[LinearConstraint],
    mut budget: usize,
    governor: &ResourceGovernor,
) -> LiaResult {
    branch_and_bound(constraints, &BranchBounds::new(), &mut budget, governor)
}

/// Per-variable integer bounds accumulated by branching. Kept separate
/// from the base constraints and *intersected* on each branch (rather
/// than appending one constraint per branch) so that a deep dive — e.g.
/// along an unbounded ray with no integer point — keeps every node the
/// same size. With stacked constraints the tableau grows by one row per
/// level and the node budget stops bounding wall-clock time.
///
/// Ordered map so constraint materialization (and hence simplex pivoting
/// and the models it returns) is deterministic.
type BranchBoundsMap = std::collections::BTreeMap<VarId, (Option<i128>, Option<i128>)>;

#[derive(Clone)]
struct BranchBounds(BranchBoundsMap);

impl BranchBounds {
    fn new() -> BranchBounds {
        BranchBounds(BranchBoundsMap::new())
    }

    /// Intersects `var ≤ k` (Upper) or `var ≥ k` (Lower) into the map.
    /// Returns `false` when the result is an empty interval, i.e. the
    /// branch is infeasible outright.
    fn tighten(&mut self, var: VarId, k: i128, kind: BoundKind) -> bool {
        let (lo, hi) = self.0.entry(var).or_insert((None, None));
        match kind {
            BoundKind::Upper => *hi = Some(hi.map_or(k, |h| h.min(k))),
            BoundKind::Lower => *lo = Some(lo.map_or(k, |l| l.max(k))),
        }
        match (*lo, *hi) {
            (Some(l), Some(h)) => l <= h,
            _ => true,
        }
    }

    /// Materializes the bounds as constraints appended to `base`.
    fn constraints(&self, base: &[LinearConstraint]) -> Vec<LinearConstraint> {
        let mut cs = base.to_vec();
        for (&v, &(lo, hi)) in &self.0 {
            if let Some(l) = lo {
                if let NormalizedConstraint::Constraint(c) =
                    bound_constraint(v, l, BoundKind::Lower)
                {
                    cs.push(c);
                }
            }
            if let Some(h) = hi {
                if let NormalizedConstraint::Constraint(c) =
                    bound_constraint(v, h, BoundKind::Upper)
                {
                    cs.push(c);
                }
            }
        }
        cs
    }
}

fn branch_and_bound(
    base: &[LinearConstraint],
    bounds: &BranchBounds,
    budget: &mut usize,
    governor: &ResourceGovernor,
) -> LiaResult {
    if *budget == 0 || governor.charge(Category::BranchNodes).is_err() {
        return LiaResult::Unknown;
    }
    *budget -= 1;
    match check_rational_governed(&bounds.constraints(base), governor) {
        SimplexResult::Unsat => LiaResult::Unsat,
        SimplexResult::Unknown => LiaResult::Unknown,
        SimplexResult::Sat(model) => {
            // Find a fractional variable.
            let fractional = model
                .iter()
                .filter(|(_, v)| !v.is_integer())
                .min_by_key(|(var, _)| **var);
            match fractional {
                None => LiaResult::Sat(
                    model
                        .into_iter()
                        .map(|(v, r)| (v, r.to_integer().expect("integral model")))
                        .collect(),
                ),
                Some((&var, &val)) => {
                    // Branch x ≤ ⌊v⌋, then x ≥ ⌈v⌉.
                    let mut saw_unknown = false;
                    for (k, kind) in [
                        (val.floor(), BoundKind::Upper),
                        (val.ceil(), BoundKind::Lower),
                    ] {
                        let mut tightened = bounds.clone();
                        if !tightened.tighten(var, k, kind) {
                            // Empty interval: the branch is infeasible.
                            continue;
                        }
                        match branch_and_bound(base, &tightened, budget, governor) {
                            LiaResult::Sat(m) => return LiaResult::Sat(m),
                            LiaResult::Unsat => {}
                            LiaResult::Unknown => saw_unknown = true,
                        }
                    }
                    if saw_unknown {
                        LiaResult::Unknown
                    } else {
                        LiaResult::Unsat
                    }
                }
            }
        }
    }
}

enum BoundKind {
    Upper,
    Lower,
}

fn bound_constraint(var: VarId, k: i128, kind: BoundKind) -> NormalizedConstraint {
    let e = match kind {
        BoundKind::Upper => LinExpr::var(var).sub(&LinExpr::constant(k)),
        BoundKind::Lower => LinExpr::constant(k).sub(&LinExpr::var(var)),
    };
    LinearConstraint::new(e, Rel::Le0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(e: LinExpr, r: Rel) -> LinearConstraint {
        match LinearConstraint::new(e, r) {
            NormalizedConstraint::Constraint(c) => c,
            other => panic!("trivial {other:?}"),
        }
    }

    fn x() -> VarId {
        VarId(0)
    }
    fn y() -> VarId {
        VarId(1)
    }

    fn le(e: LinExpr, k: i128) -> LinearConstraint {
        mk(e.sub(&LinExpr::constant(k)), Rel::Le0)
    }
    fn ge(e: LinExpr, k: i128) -> LinearConstraint {
        mk(LinExpr::constant(k).sub(&e), Rel::Le0)
    }
    fn eq(e: LinExpr, k: i128) -> LinearConstraint {
        mk(e.sub(&LinExpr::constant(k)), Rel::Eq0)
    }

    #[test]
    fn integral_model_direct() {
        let cs = [ge(LinExpr::var(x()), 2), le(LinExpr::var(x()), 2)];
        match check_integer(&cs) {
            LiaResult::Sat(m) => assert_eq!(m[&x()], 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn branching_finds_integer_point() {
        // 2x + 2y = 6, x ≥ 1, y ≥ 1 → (1, 2) etc.; rational vertex may be
        // fractional depending on pivoting but integers exist.
        let cs = [
            eq(
                LinExpr::var(x()).scale(2).add(&LinExpr::var(y()).scale(2)),
                6,
            ),
            ge(LinExpr::var(x()), 1),
            ge(LinExpr::var(y()), 1),
        ];
        match check_integer(&cs) {
            LiaResult::Sat(m) => {
                assert_eq!(2 * m[&x()] + 2 * m[&y()], 6);
                assert!(m[&x()] >= 1 && m[&y()] >= 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rational_sat_integer_unsat() {
        // 2x = 2y + 1 is normalized away, so use: 1 ≤ 2x ≤ 1 via two
        // inequalities that *don't* normalize jointly:
        // 2x ≥ 1 ⇒ x ≥ 1 (tightened), 2x ≤ 1 ⇒ x ≤ 0 (tightened).
        // Tightening already resolves it — good; check the result is unsat.
        let cs = [
            ge(LinExpr::var(x()).scale(2), 1),
            le(LinExpr::var(x()).scale(2), 1),
        ];
        assert_eq!(check_integer(&cs), LiaResult::Unsat);
    }

    #[test]
    fn branch_and_bound_gap() {
        // x + y = 1, 3 ≤ 3x − 3y... use: 2x + 4y = 5 has no integer
        // solution but constructing it directly is normalized to unsat by
        // the gcd check. A genuine B&B case: x ≥ 0, y ≥ 0,
        // 3x + 3y ≤ 4 (⇒ x + y ≤ 1 after tightening), 2x + 2y ≥ 1
        // (⇒ x + y ≥ 1), so x + y = 1: integral points exist (1,0).
        let cs = [
            ge(LinExpr::var(x()), 0),
            ge(LinExpr::var(y()), 0),
            le(
                LinExpr::var(x()).scale(3).add(&LinExpr::var(y()).scale(3)),
                4,
            ),
            ge(
                LinExpr::var(x()).scale(2).add(&LinExpr::var(y()).scale(2)),
                1,
            ),
        ];
        assert!(check_integer(&cs).is_sat());
    }

    #[test]
    fn mixed_coefficient_unsat_needs_branching() {
        // 0 ≤ x ≤ 1, 0 ≤ y ≤ 1, 2x + 2y = 2 has solutions (1,0),(0,1);
        // adding x = y forces x = y = 1/2 over ℚ → integer unsat.
        let cs = [
            ge(LinExpr::var(x()), 0),
            le(LinExpr::var(x()), 1),
            ge(LinExpr::var(y()), 0),
            le(LinExpr::var(y()), 1),
            eq(LinExpr::var(x()).add(&LinExpr::var(y())), 1),
            eq(LinExpr::var(x()).sub(&LinExpr::var(y())), 0),
        ];
        assert_eq!(check_integer(&cs), LiaResult::Unsat);
    }

    #[test]
    fn budget_exhaustion_is_unknown() {
        let cs = [
            eq(LinExpr::var(x()).add(&LinExpr::var(y())), 1),
            eq(LinExpr::var(x()).sub(&LinExpr::var(y())), 0),
        ];
        assert_eq!(check_integer_with_budget(&cs, 0), LiaResult::Unknown);
    }

    #[test]
    fn governor_node_budget_is_unknown() {
        let cs = [
            eq(LinExpr::var(x()).add(&LinExpr::var(y())), 1),
            eq(LinExpr::var(x()).sub(&LinExpr::var(y())), 0),
        ];
        let g = ResourceGovernor::builder()
            .budget(Category::BranchNodes, 1)
            .build();
        assert_eq!(
            check_integer_governed(&cs, DEFAULT_BB_BUDGET, &g),
            LiaResult::Unknown
        );
        assert_eq!(g.give_up().unwrap().category, Category::BranchNodes);
    }

    #[test]
    fn empty_is_sat() {
        assert!(check_integer(&[]).is_sat());
    }

    #[test]
    fn unbounded_ray_dive_stays_cheap() {
        // ℚ-feasible but ℤ-infeasible along an unbounded ray: branching
        // walks the ray one unit per level and never converges, so the
        // node budget is the only exit. With stacked branch constraints
        // each node grew the tableau by a row and the 2000-node default
        // took hours; with intersected per-variable bounds it's instant.
        // Regression for a hang found by the differential fuzz battery.
        let z = VarId(2);
        let cs = [
            ge(
                LinExpr::var(x())
                    .sub(&LinExpr::var(y()))
                    .add(&LinExpr::var(z).scale(2)),
                6,
            ),
            eq(
                LinExpr::var(x())
                    .scale(-3)
                    .add(&LinExpr::var(y()))
                    .sub(&LinExpr::var(z).scale(2)),
                -4,
            ),
            eq(
                LinExpr::var(x())
                    .scale(2)
                    .sub(&LinExpr::var(y()).scale(3))
                    .sub(&LinExpr::var(z)),
                -6,
            ),
            le(LinExpr::var(x()).scale(2).add(&LinExpr::var(y())), 5),
        ];
        let start = std::time::Instant::now();
        assert_eq!(
            check_integer_with_budget(&cs, DEFAULT_BB_BUDGET),
            LiaResult::Unknown
        );
        assert!(
            start.elapsed() < std::time::Duration::from_secs(30),
            "budgeted branch-and-bound must exit promptly"
        );
    }

    #[test]
    fn model_satisfies_all_constraints() {
        let cs = [
            ge(LinExpr::var(x()).add(&LinExpr::var(y())), 7),
            le(LinExpr::var(x()).sub(&LinExpr::var(y())), -1),
            le(LinExpr::var(y()), 10),
        ];
        match check_integer(&cs) {
            LiaResult::Sat(m) => {
                for c in &cs {
                    assert!(c.eval(|v| m[&v]), "model violates {c:?}");
                }
            }
            other => panic!("{other:?}"),
        }
    }
}
