//! CPL source generators for the parametric benchmark families.
//!
//! Each generator returns a complete CPL compilation unit. Ground truths
//! are documented per generator and double-checked by the corpus tests
//! (SMT verifier vs. explicit-state search on small instances).

use std::fmt::Write as _;

/// The §2 bluetooth driver, corrected version, with `n ≥ 1` user threads
/// (one carrying the assertion, by symmetry) and one stopper. **Safe.**
pub fn bluetooth(n_users: usize) -> String {
    assert!(n_users >= 1);
    let mut s = String::from(
        "// Bluetooth driver (corrected), §2 of the paper.
var pendingIo: int = 1;
var stoppingFlag: bool = false;
var stoppingEvent: bool = false;
var stopped: bool = false;

thread user_checked {
    while (*) {
        atomic { assume !stoppingFlag; pendingIo := pendingIo + 1; }
        assert !stopped;
        atomic { pendingIo := pendingIo - 1; if (pendingIo == 0) { stoppingEvent := true; } }
    }
}

thread user {
    while (*) {
        atomic { assume !stoppingFlag; pendingIo := pendingIo + 1; }
        atomic { pendingIo := pendingIo - 1; if (pendingIo == 0) { stoppingEvent := true; } }
    }
}

thread stopper {
    stoppingFlag := true;
    atomic { pendingIo := pendingIo - 1; if (pendingIo == 0) { stoppingEvent := true; } }
    assume stoppingEvent;
    stopped := true;
}

spawn user_checked;
",
    );
    if n_users > 1 {
        let _ = writeln!(s, "spawn user * {};", n_users - 1);
    }
    s.push_str("spawn stopper;\n");
    s
}

/// The *original* (KISS) bluetooth driver: the user's flag check and the
/// pendingIo increment are not atomic, so the stopper can complete in
/// between. **Unsafe.**
pub fn bluetooth_buggy(n_users: usize) -> String {
    assert!(n_users >= 1);
    let mut s = String::from(
        "// Bluetooth driver, original buggy version (non-atomic enter).
var pendingIo: int = 1;
var stoppingFlag: bool = false;
var stoppingEvent: bool = false;
var stopped: bool = false;

thread user_checked {
    while (*) {
        assume !stoppingFlag;
        pendingIo := pendingIo + 1;
        assert !stopped;
        atomic { pendingIo := pendingIo - 1; if (pendingIo == 0) { stoppingEvent := true; } }
    }
}

thread stopper {
    stoppingFlag := true;
    atomic { pendingIo := pendingIo - 1; if (pendingIo == 0) { stoppingEvent := true; } }
    assume stoppingEvent;
    stopped := true;
}

spawn user_checked;
",
    );
    if n_users > 1 {
        let _ = writeln!(s, "spawn user_checked * {};", n_users - 1);
    }
    s.push_str("spawn stopper;\n");
    s
}

/// `n` workers each add 1 to a shared counter `k` times (atomically), then
/// signal completion; a checker asserts `counter ≤ bound` once all workers
/// are done. **Safe iff `bound ≥ n·k`.**
pub fn shared_counter(n: usize, k: usize, bound: i128) -> String {
    let mut s = String::from("// Shared counter with join-style checker.\n");
    let _ = writeln!(s, "var counter: int = 0;\nvar done: int = 0;\n");
    s.push_str(&format!(
        "thread worker {{
    local i: int = 0;
    while (i < {k}) {{
        atomic {{ counter := counter + 1; }}
        i := i + 1;
    }}
    atomic {{ done := done + 1; }}
}}

thread checker {{
    assume done == {n};
    assert counter <= {bound};
}}

spawn worker * {n};
spawn checker;
"
    ));
    s
}

/// `n` threads enter a critical section guarded by a test-and-set
/// spinlock (or unguarded when `with_lock` is false); the first thread
/// asserts the critical counter is exactly 1 inside.
/// **Safe iff `with_lock`.**
pub fn spinlock(n: usize, with_lock: bool) -> String {
    assert!(n >= 2);
    let (acquire, release) = if with_lock {
        (
            "atomic { assume lock == 0; lock := 1; }\n    ",
            "lock := 0;\n    ",
        )
    } else {
        ("", "")
    };
    let mut s = String::from("// Test-and-set spinlock mutual exclusion.\n");
    s.push_str("var lock: int = 0;\nvar c: int = 0;\n\n");
    let _ = writeln!(
        s,
        "thread first {{
    {acquire}c := c + 1;
    assert c == 1;
    c := c - 1;
    {release}
}}

thread other {{
    {acquire}c := c + 1;
    c := c - 1;
    {release}
}}

spawn first;
spawn other * {};",
        n - 1
    );
    s
}

/// Peterson's mutual exclusion for two threads (correct), or the classic
/// check-then-set race (buggy). **Safe iff `correct`.**
pub fn peterson(correct: bool) -> String {
    if correct {
        "// Peterson's algorithm, 2 threads.
var flag0: bool = false;
var flag1: bool = false;
var turn: int = 0;
var c: int = 0;

thread t0 {
    flag0 := true;
    turn := 1;
    assume !flag1 || turn == 0;
    c := c + 1;
    assert c == 1;
    c := c - 1;
    flag0 := false;
}

thread t1 {
    flag1 := true;
    turn := 0;
    assume !flag0 || turn == 1;
    c := c + 1;
    c := c - 1;
    flag1 := false;
}

spawn t0;
spawn t1;
"
        .to_owned()
    } else {
        "// Broken mutual exclusion: check-then-set race.
var flag0: bool = false;
var flag1: bool = false;
var c: int = 0;

thread t0 {
    assume !flag1;
    flag0 := true;
    c := c + 1;
    assert c == 1;
    c := c - 1;
    flag0 := false;
}

thread t1 {
    assume !flag0;
    flag1 := true;
    c := c + 1;
    c := c - 1;
    flag1 := false;
}

spawn t0;
spawn t1;
"
        .to_owned()
    }
}

/// Bounded-buffer producer/consumer over an item counter. The producer
/// asserts `0 ≤ count ≤ capacity` after each production; the guarded
/// version checks capacity before producing. **Safe iff `guarded`.**
pub fn producer_consumer(capacity: i128, guarded: bool) -> String {
    let produce = if guarded {
        format!("atomic {{ assume count < {capacity}; count := count + 1; }}")
    } else {
        "atomic { count := count + 1; }".to_owned()
    };
    format!(
        "// Bounded buffer as an item counter.
var count: int = 0;

thread producer {{
    while (*) {{
        {produce}
        assert count >= 0 && count <= {capacity};
    }}
}}

thread consumer {{
    while (*) {{
        atomic {{ assume count > 0; count := count - 1; }}
    }}
}}

spawn producer;
spawn consumer;
"
    )
}

/// The SV-COMP `fib_bench` pattern: two threads repeatedly add each
/// other's variable; the maximal reachable value of `i` follows the
/// Fibonacci numbers. With `iters = 2` the maximum is 8.
/// **Safe iff `bound ≥` that maximum.**
pub fn fib_bench(iters: usize, bound: i128) -> String {
    format!(
        "// fib_bench: interleaved mutual additions.
var i: int = 1;
var j: int = 1;

thread add_i {{
    local k: int = 0;
    while (k < {iters}) {{
        atomic {{ i := i + j; }}
        k := k + 1;
    }}
    assert i <= {bound};
}}

thread add_j {{
    local k: int = 0;
    while (k < {iters}) {{
        atomic {{ j := j + i; }}
        k := k + 1;
    }}
}}

spawn add_i;
spawn add_j;
"
    )
}

/// Two threads perform a non-atomic read-modify-write of `x`; the lost
/// update makes the final assertion fail. **Unsafe.**
pub fn split_read_modify_write() -> String {
    "// Lost update: non-atomic x := x + 1 in both threads.
var x: int = 0;
var done: int = 0;

thread incr {
    local tmp: int = 0;
    tmp := x;
    x := tmp + 1;
    atomic { done := done + 1; }
}

thread checker {
    assume done == 2;
    assert x == 2;
}

spawn incr * 2;
spawn checker;
"
    .to_owned()
}

/// Message-passing handshake: the writer publishes data, then raises the
/// ready flag; the reader checks the flag before reading. **Safe.**
pub fn flag_handshake() -> String {
    "// Publication via a ready flag.
var data: int = 0;
var ready: bool = false;

thread writer {
    data := 42;
    ready := true;
}

thread reader {
    assume ready;
    assert data == 42;
}

spawn writer;
spawn reader;
"
    .to_owned()
}

/// The same handshake with the flag raised *before* the data is written.
/// **Unsafe.**
pub fn flag_handshake_buggy() -> String {
    "// Broken publication: flag raised before the data is ready.
var data: int = 0;
var ready: bool = false;

thread writer {
    ready := true;
    data := 42;
}

thread reader {
    assume ready;
    assert data == 42;
}

spawn writer;
spawn reader;
"
    .to_owned()
}

/// One thread counts `c` up `n` times, another counts it down `n` times; a
/// checker asserts `c = 0` after both complete. Requires a counting proof
/// (Weaver-style). **Safe.**
pub fn count_up_down(n: usize) -> String {
    count_up_down_impl(n, n)
}

/// As [`count_up_down`] but the down-counter runs once more: the final
/// value is −1. **Unsafe.**
pub fn count_up_down_buggy(n: usize) -> String {
    count_up_down_impl(n, n + 1)
}

fn count_up_down_impl(ups: usize, downs: usize) -> String {
    format!(
        "// Count up / count down with a join-style checker.
var c: int = 0;
var done: int = 0;

thread up {{
    local i: int = 0;
    while (i < {ups}) {{
        atomic {{ c := c + 1; }}
        i := i + 1;
    }}
    atomic {{ done := done + 1; }}
}}

thread down {{
    local i: int = 0;
    while (i < {downs}) {{
        atomic {{ c := c - 1; }}
        i := i + 1;
    }}
    atomic {{ done := done + 1; }}
}}

thread checker {{
    assume done == 2;
    assert c == 0;
}}

spawn up;
spawn down;
spawn checker;
"
    )
}

/// `n` threads each add a nondeterministic value `0 ≤ h ≤ 3` to `sum`
/// while adding 3 to `cap` in the same atomic block; the checker asserts
/// `sum ≤ cap`. Needs the relational invariant `sum ≤ cap`. **Safe.**
pub fn parallel_add(n: usize) -> String {
    format!(
        "// Parallel addition of bounded nondeterministic values.
var sum: int = 0;
var cap: int = 0;
var done: int = 0;

thread adder {{
    local h: int = 0;
    havoc h;
    assume h >= 0 && h <= 3;
    atomic {{ sum := sum + h; cap := cap + 3; done := done + 1; }}
}}

thread checker {{
    assume done == {n};
    assert sum <= cap;
}}

spawn adder * {n};
spawn checker;
"
    )
}

/// A token passes through `n` stages in order; the checker asserts the
/// token's final position. The proof is a chain of stage invariants
/// (lockstep-friendly). **Safe.**
pub fn lockstep_flags(n: usize) -> String {
    let mut s = String::from("// Token passing chain.\nvar token: int = 0;\n\n");
    for i in 0..n {
        let _ = writeln!(
            s,
            "thread stage{i} {{
    assume token == {i};
    token := {};
}}
",
            i + 1
        );
    }
    let _ = writeln!(
        s,
        "thread checker {{
    assume token == {n};
    assert token >= {n};
}}
"
    );
    for i in 0..n {
        let _ = writeln!(s, "spawn stage{i};");
    }
    s.push_str("spawn checker;\n");
    s
}

/// A ticket lock: atomically draw a ticket, wait to be served, bump the
/// serving counter on exit. Mutual exclusion needs ticket-uniqueness
/// invariants. **Safe.**
pub fn ticket_lock() -> String {
    "// Ticket lock mutual exclusion.
var next: int = 0;
var serving: int = 0;
var c: int = 0;

thread first {
    local my: int = 0;
    atomic { my := next; next := next + 1; }
    assume serving == my;
    c := c + 1;
    assert c == 1;
    c := c - 1;
    serving := serving + 1;
}

thread other {
    local my: int = 0;
    atomic { my := next; next := next + 1; }
    assume serving == my;
    c := c + 1;
    c := c - 1;
    serving := serving + 1;
}

spawn first;
spawn other;
"
    .to_owned()
}

/// `n` threads race to publish the maximum of their bounded local values;
/// the checker asserts the result stays within bounds. **Safe.**
pub fn max_of_locals(n: usize) -> String {
    format!(
        "// Concurrent maximum of bounded locals.
var max: int = 0;
var done: int = 0;

thread contender {{
    local v: int = 0;
    havoc v;
    assume v >= 0 && v <= 10;
    atomic {{ if (v > max) {{ max := v; }} done := done + 1; }}
}}

thread checker {{
    assume done == {n};
    assert max >= 0 && max <= 10;
}}

spawn contender * {n};
spawn checker;
"
    )
}

/// Dekker's mutual exclusion (with the classic retry loop, busy waits
/// modeled as `assume`). The buggy variant omits the `turn` handover
/// protocol, so both threads can slip into the critical section.
/// **Safe iff `correct`.**
pub fn dekker(correct: bool) -> String {
    if correct {
        "// Dekker's algorithm, 2 threads.
var flag0: bool = false;
var flag1: bool = false;
var turn: int = 0;
var c: int = 0;

thread t0 {
    flag0 := true;
    while (flag1) {
        if (turn != 0) {
            flag0 := false;
            assume turn == 0;
            flag0 := true;
        }
    }
    c := c + 1;
    assert c == 1;
    c := c - 1;
    turn := 1;
    flag0 := false;
}

thread t1 {
    flag1 := true;
    while (flag0) {
        if (turn != 1) {
            flag1 := false;
            assume turn == 1;
            flag1 := true;
        }
    }
    c := c + 1;
    c := c - 1;
    turn := 0;
    flag1 := false;
}

spawn t0;
spawn t1;
"
        .to_owned()
    } else {
        // No turn handover: t1 can pass via !flag0 before t0 raises its
        // flag, after which t0 still passes via turn == 0.
        "// Broken Dekker: flags without the turn protocol.
var flag0: bool = false;
var flag1: bool = false;
var turn: int = 0;
var c: int = 0;

thread t0 {
    flag0 := true;
    assume !flag1 || turn == 0;
    c := c + 1;
    assert c == 1;
    c := c - 1;
    turn := 1;
    flag0 := false;
}

thread t1 {
    flag1 := true;
    assume !flag0 || turn == 1;
    c := c + 1;
    c := c - 1;
    turn := 0;
    flag1 := false;
}

spawn t0;
spawn t1;
"
        .to_owned()
    }
}

/// Readers/writers: readers enter only while no write is in progress; the
/// writer (asserting thread) waits for zero readers in the guarded
/// version. **Safe iff `guarded`.**
pub fn readers_writers(n_readers: usize, guarded: bool) -> String {
    let writer_entry = if guarded {
        "atomic { assume readers == 0 && !writing; writing := true; }"
    } else {
        "atomic { assume !writing; writing := true; }"
    };
    format!(
        "// Readers/writers with a reader count.
var readers: int = 0;
var writing: bool = false;

thread reader {{
    while (*) {{
        atomic {{ assume !writing; readers := readers + 1; }}
        atomic {{ readers := readers - 1; }}
    }}
}}

thread writer {{
    {writer_entry}
    assert readers == 0;
    writing := false;
}}

spawn reader * {n_readers};
spawn writer;
"
    )
}

/// Guarded increment/decrement of a shared counter: the decrementer checks
/// positivity atomically (or not, in the racy variant) and asserts the
/// counter never goes negative. **Safe iff `guarded`.**
pub fn inc_dec(iters: usize, guarded: bool) -> String {
    let dec = if guarded {
        "atomic { assume c > 0; c := c - 1; }"
    } else {
        "atomic { c := c - 1; }"
    };
    format!(
        "// Increment / guarded decrement.
var c: int = 0;

thread inc {{
    local i: int = 0;
    while (i < {iters}) {{
        atomic {{ c := c + 1; }}
        i := i + 1;
    }}
}}

thread dec {{
    local i: int = 0;
    while (i < {iters}) {{
        {dec}
        assert c >= 0;
        i := i + 1;
    }}
}}

spawn inc;
spawn dec;
"
    )
}

/// A single-phase barrier: workers register arrival, wait for everyone,
/// then mark the phase done; a checker asserts that once anyone passed the
/// barrier, all `n` workers had arrived. The buggy variant waits for
/// `n − 1` arrivals (a classic off-by-one). **Safe iff `correct`.**
pub fn barrier(n: usize, correct: bool) -> String {
    let wait_for = if correct {
        n
    } else {
        n.saturating_sub(1).max(1)
    };
    format!(
        "// Counting barrier.
var arrived: int = 0;
var phase_done: int = 0;

thread worker {{
    atomic {{ arrived := arrived + 1; }}
    assume arrived == {wait_for};
    atomic {{ phase_done := phase_done + 1; }}
}}

thread checker {{
    assume phase_done >= 1;
    assert arrived == {n};
}}

spawn worker * {n};
spawn checker;
"
    )
}

/// Double-checked one-time initialization behind a spinlock. The buggy
/// variant publishes the `initialized` flag before writing the data.
/// **Safe iff `correct`.**
pub fn double_checked_init(correct: bool) -> String {
    let body = if correct {
        "data := 42; initialized := true;"
    } else {
        "initialized := true; data := 42;"
    };
    format!(
        "// Double-checked initialization.
var lock: int = 0;
var initialized: bool = false;
var data: int = 0;

thread user {{
    if (!initialized) {{
        atomic {{ assume lock == 0; lock := 1; }}
        if (!initialized) {{ {body} }}
        lock := 0;
    }}
    assume initialized;
    assert data == 42;
}}

thread other {{
    if (!initialized) {{
        atomic {{ assume lock == 0; lock := 1; }}
        if (!initialized) {{ {body} }}
        lock := 0;
    }}
}}

spawn user;
spawn other;
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt::term::TermPool;

    #[test]
    fn all_generators_produce_valid_cpl() {
        let sources = vec![
            bluetooth(1),
            bluetooth(3),
            bluetooth_buggy(1),
            shared_counter(2, 2, 4),
            spinlock(2, true),
            spinlock(3, false),
            peterson(true),
            peterson(false),
            producer_consumer(2, true),
            producer_consumer(2, false),
            fib_bench(2, 8),
            split_read_modify_write(),
            flag_handshake(),
            flag_handshake_buggy(),
            count_up_down(2),
            count_up_down_buggy(2),
            parallel_add(2),
            lockstep_flags(3),
            ticket_lock(),
            max_of_locals(2),
        ];
        for src in sources {
            let mut pool = TermPool::new();
            cpl::compile(&src, &mut pool).unwrap_or_else(|e| panic!("{e}\n---\n{src}"));
        }
    }

    #[test]
    fn fib_bench_ground_truth_via_interpreter() {
        use program::concurrent::Spec;
        use program::interp::{Interpreter, SearchResult};
        use program::thread::ThreadId;
        // iters = 2: max reachable i is 8.
        for (bound, safe) in [(8, true), (7, false)] {
            let mut pool = TermPool::new();
            let p = cpl::compile(&fib_bench(2, bound), &mut pool).unwrap();
            let interp = Interpreter::new(&p);
            let result = interp.search(&pool, Spec::ErrorOf(ThreadId(0)), 1_000_000);
            match (safe, result) {
                (
                    true,
                    SearchResult::NoErrorFound {
                        exhaustive: true, ..
                    },
                ) => {}
                (false, SearchResult::ErrorReachable(_)) => {}
                (s, r) => panic!("bound {bound}: expected safe={s}, got {r:?}"),
            }
        }
    }

    #[test]
    fn buggy_variants_have_reachable_errors() {
        use program::concurrent::Spec;
        use program::interp::{Interpreter, SearchResult};
        for src in [
            bluetooth_buggy(1),
            peterson(false),
            split_read_modify_write(),
            flag_handshake_buggy(),
            count_up_down_buggy(2),
            producer_consumer(2, false),
            spinlock(2, false),
        ] {
            let mut pool = TermPool::new();
            let p = cpl::compile(&src, &mut pool).unwrap();
            let t = p.asserting_threads()[0];
            let interp = Interpreter::new(&p);
            match interp.search(&pool, Spec::ErrorOf(t), 3_000_000) {
                SearchResult::ErrorReachable(_) => {}
                other => panic!("no bug found: {other:?}\n{src}"),
            }
        }
    }

    #[test]
    fn safe_variants_have_no_reachable_errors() {
        use program::concurrent::Spec;
        use program::interp::{Interpreter, SearchResult};
        for src in [
            peterson(true),
            flag_handshake(),
            count_up_down(2),
            spinlock(2, true),
            ticket_lock(),
            lockstep_flags(2),
            shared_counter(2, 1, 2),
        ] {
            let mut pool = TermPool::new();
            let p = cpl::compile(&src, &mut pool).unwrap();
            let t = p.asserting_threads()[0];
            // Havoc domain covers the guards used by the corpus.
            let interp = Interpreter::new(&p).with_havoc_domain(vec![0, 1, 2, 3, 10]);
            match interp.search(&pool, Spec::ErrorOf(t), 3_000_000) {
                SearchResult::NoErrorFound {
                    exhaustive: true, ..
                } => {}
                other => panic!("unexpected: {other:?}\n{src}"),
            }
        }
    }
}
