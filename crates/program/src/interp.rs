//! Concrete explicit-state interpreter and bounded model checker.
//!
//! Used for differential testing: the SMT-based verifier and this
//! enumerative checker must agree on small instances. Nondeterminism
//! (`havoc`, nondeterministic branches) is resolved by branching over a
//! finite *havoc domain*, so the interpreter under-approximates the real
//! semantics — sufficient to confirm bugs, never to prove correctness.

use crate::concurrent::{LetterId, Program, Spec};
use crate::stmt::SimpleStmt;
use automata::dfa::StateId;
use smt::linear::VarId;
use smt::term::TermPool;
use std::collections::{BTreeMap, HashSet, VecDeque};

/// A concrete configuration: control locations plus variable values.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConcreteState {
    /// Per-thread control locations.
    pub locs: Vec<StateId>,
    /// Variable valuation (absent ⇒ 0).
    pub values: BTreeMap<VarId, i128>,
}

impl ConcreteState {
    /// The value of `v` (0 if unassigned).
    pub fn value(&self, v: VarId) -> i128 {
        self.values.get(&v).copied().unwrap_or(0)
    }
}

/// Result of a bounded search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchResult {
    /// An error location of the spec's thread is reachable; witness trace.
    ErrorReachable(Vec<LetterId>),
    /// No error found within the explored bound.
    NoErrorFound {
        /// Number of distinct states explored.
        explored: usize,
        /// `true` if the search exhausted the state space (under the havoc
        /// domain), `false` if it stopped at the bound.
        exhaustive: bool,
    },
}

/// Explicit-state interpreter for a program.
#[derive(Clone, Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    /// Values substituted for `havoc` (and nondeterministic inits).
    havoc_domain: Vec<i128>,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter with the default havoc domain `{0, 1}`.
    pub fn new(program: &'p Program) -> Interpreter<'p> {
        Interpreter {
            program,
            havoc_domain: vec![0, 1],
        }
    }

    /// Overrides the havoc domain.
    pub fn with_havoc_domain(mut self, domain: Vec<i128>) -> Interpreter<'p> {
        assert!(!domain.is_empty(), "havoc domain must be nonempty");
        self.havoc_domain = domain;
        self
    }

    /// The initial states (branching over nondeterministic initials).
    pub fn initial_states(&self) -> Vec<ConcreteState> {
        let locs: Vec<StateId> = self.program.threads().iter().map(|t| t.entry()).collect();
        let mut states = vec![ConcreteState {
            locs,
            values: BTreeMap::new(),
        }];
        for &v in self.program.globals() {
            match self.program.init_values().get(&v) {
                Some(&k) => {
                    for s in &mut states {
                        s.values.insert(v, k);
                    }
                }
                None => {
                    // Nondeterministic init: branch over the havoc domain.
                    let mut next = Vec::with_capacity(states.len() * self.havoc_domain.len());
                    for s in states {
                        for &k in &self.havoc_domain {
                            let mut s2 = s.clone();
                            s2.values.insert(v, k);
                            next.push(s2);
                        }
                    }
                    states = next;
                }
            }
        }
        states
    }

    /// All successor states of `state` under letter `l` (empty if the
    /// letter is disabled or all paths block).
    pub fn step(&self, pool: &TermPool, state: &ConcreteState, l: LetterId) -> Vec<ConcreteState> {
        let t = self.program.thread_of(l);
        let Some(next_loc) = self.program.thread(t).cfg().step(state.locs[t.index()], l) else {
            return Vec::new();
        };
        let stmt = self.program.statement(l);
        let mut out = Vec::new();
        for path in stmt.paths() {
            let mut frontier = vec![state.values.clone()];
            for s in path {
                let mut next = Vec::new();
                for values in frontier {
                    match s {
                        SimpleStmt::Assume(g) => {
                            let v = values.clone();
                            if pool.eval(*g, &|var| v.get(&var).copied().unwrap_or(0)) {
                                next.push(values);
                            }
                        }
                        SimpleStmt::Assign(x, e) => {
                            let val = e.eval(|var| values.get(&var).copied().unwrap_or(0));
                            let mut values = values;
                            values.insert(*x, val);
                            next.push(values);
                        }
                        SimpleStmt::Havoc(x) => {
                            for &k in &self.havoc_domain {
                                let mut values = values.clone();
                                values.insert(*x, k);
                                next.push(values);
                            }
                        }
                    }
                }
                frontier = next;
            }
            for values in frontier {
                let mut locs = state.locs.clone();
                locs[t.index()] = next_loc;
                out.push(ConcreteState { locs, values });
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Breadth-first search for a reachable accepting state of `spec`,
    /// bounded by `max_states` distinct states.
    pub fn search(&self, pool: &TermPool, spec: Spec, max_states: usize) -> SearchResult {
        let mut visited: HashSet<ConcreteState> = HashSet::new();
        let mut queue: VecDeque<(ConcreteState, Vec<LetterId>)> = VecDeque::new();
        for s in self.initial_states() {
            if visited.insert(s.clone()) {
                queue.push_back((s, Vec::new()));
            }
        }
        let mut exhaustive = true;
        while let Some((state, trace)) = queue.pop_front() {
            if self.is_accepting(&state, spec) {
                return SearchResult::ErrorReachable(trace);
            }
            if visited.len() >= max_states {
                exhaustive = false;
                continue;
            }
            for l in self.enabled(&state) {
                for succ in self.step(pool, &state, l) {
                    if visited.insert(succ.clone()) {
                        let mut t = trace.clone();
                        t.push(l);
                        queue.push_back((succ, t));
                    }
                }
            }
        }
        SearchResult::NoErrorFound {
            explored: visited.len(),
            exhaustive,
        }
    }

    /// Replays `trace`, branching over havoc values; returns `true` if some
    /// resolution of the nondeterminism completes the whole trace.
    pub fn replay(&self, pool: &TermPool, trace: &[LetterId]) -> bool {
        let mut frontier = self.initial_states();
        for &l in trace {
            let mut next = Vec::new();
            for s in &frontier {
                next.extend(self.step(pool, s, l));
            }
            next.sort();
            next.dedup();
            frontier = next;
            if frontier.is_empty() {
                return false;
            }
        }
        true
    }

    fn enabled(&self, state: &ConcreteState) -> Vec<LetterId> {
        let mut out = Vec::new();
        for (i, t) in self.program.threads().iter().enumerate() {
            out.extend(t.cfg().enabled(state.locs[i]));
        }
        out.sort_unstable();
        out
    }

    fn is_accepting(&self, state: &ConcreteState, spec: Spec) -> bool {
        match spec {
            Spec::PrePost => self
                .program
                .threads()
                .iter()
                .enumerate()
                .all(|(i, t)| t.is_exit(state.locs[i])),
            Spec::ErrorOf(t) => self.program.thread(t).is_error(state.locs[t.index()]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::{SimpleStmt, Statement};
    use crate::thread::{Thread, ThreadId};
    use automata::bitset::BitSet;
    use automata::dfa::DfaBuilder;
    use smt::linear::LinExpr;

    /// One thread: x := x + 1; assert x ≤ bound (via error edge).
    fn incr_assert_program(pool: &mut TermPool, init: i128, bound: i128) -> Program {
        let mut b = Program::builder("incr");
        let x = pool.var("x");
        b.add_global(x, init);
        let incr = b.add_statement(Statement::simple(
            ThreadId(0),
            "x := x + 1",
            SimpleStmt::Assign(x, LinExpr::var(x).add(&LinExpr::constant(1))),
            pool,
        ));
        let ok_guard = pool.le_const(x, bound);
        let bad_guard = pool.not(ok_guard);
        let ok = b.add_statement(Statement::simple(
            ThreadId(0),
            "assume x <= bound",
            SimpleStmt::Assume(ok_guard),
            pool,
        ));
        let bad = b.add_statement(Statement::simple(
            ThreadId(0),
            "assume x > bound",
            SimpleStmt::Assume(bad_guard),
            pool,
        ));
        let mut cfg = DfaBuilder::new();
        let q0 = cfg.add_state(false);
        let q1 = cfg.add_state(false);
        let exit = cfg.add_state(true);
        let err = cfg.add_state(false);
        cfg.add_transition(q0, incr, q1);
        cfg.add_transition(q1, ok, exit);
        cfg.add_transition(q1, bad, err);
        let mut errors = BitSet::new(4);
        errors.insert(err.index());
        b.add_thread(Thread::new("main", cfg.build(q0), errors));
        b.build(pool)
    }

    #[test]
    fn safe_instance_has_no_error() {
        let mut pool = TermPool::new();
        let p = incr_assert_program(&mut pool, 0, 5);
        let interp = Interpreter::new(&p);
        match interp.search(&pool, Spec::ErrorOf(ThreadId(0)), 1000) {
            SearchResult::NoErrorFound { exhaustive, .. } => assert!(exhaustive),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn buggy_instance_finds_witness() {
        let mut pool = TermPool::new();
        let p = incr_assert_program(&mut pool, 5, 5); // 5+1 > 5
        let interp = Interpreter::new(&p);
        match interp.search(&pool, Spec::ErrorOf(ThreadId(0)), 1000) {
            SearchResult::ErrorReachable(trace) => {
                assert_eq!(trace.len(), 2);
                assert!(interp.replay(&pool, &trace));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn replay_rejects_blocked_traces() {
        let mut pool = TermPool::new();
        let p = incr_assert_program(&mut pool, 0, 5);
        let interp = Interpreter::new(&p);
        // The "bad" branch (letter 2) is infeasible from init 0.
        assert!(!interp.replay(&pool, &[LetterId(0), LetterId(2)]));
        assert!(interp.replay(&pool, &[LetterId(0), LetterId(1)]));
    }

    #[test]
    fn havoc_branches_over_domain() {
        let mut pool = TermPool::new();
        let mut b = Program::builder("h");
        let x = pool.var("x");
        b.add_global(x, 0);
        let h = b.add_statement(Statement::simple(
            ThreadId(0),
            "havoc x",
            SimpleStmt::Havoc(x),
            &pool,
        ));
        let mut cfg = DfaBuilder::new();
        let q0 = cfg.add_state(false);
        let exit = cfg.add_state(true);
        cfg.add_transition(q0, h, exit);
        b.add_thread(Thread::new("t", cfg.build(q0), BitSet::new(2)));
        let p = b.build(&mut pool);
        let interp = Interpreter::new(&p).with_havoc_domain(vec![7, 8, 9]);
        let init = &interp.initial_states()[0];
        let succs = interp.step(&pool, init, LetterId(0));
        let values: Vec<i128> = succs.iter().map(|s| s.value(x)).collect();
        assert_eq!(values, vec![7, 8, 9]);
    }

    #[test]
    fn pre_post_spec_accepts_at_exit() {
        let mut pool = TermPool::new();
        let p = incr_assert_program(&mut pool, 0, 5);
        let interp = Interpreter::new(&p);
        match interp.search(&pool, Spec::PrePost, 1000) {
            SearchResult::ErrorReachable(trace) => assert_eq!(trace.len(), 2),
            other => panic!("exit should be reachable: {other:?}"),
        }
    }
}
