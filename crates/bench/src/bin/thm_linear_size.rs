//! **Theorems 4.3 / 7.2**: under a thread-uniform non-positional order and
//! full commutativity, the combined reduction automaton `(S⋖(P))↓πS` has
//! `O(size(P))` reachable states, while the interleaving product grows
//! exponentially.
//!
//! Run: `cargo run --release -p bench --bin thm_linear_size`

use automata::bitset::BitSet;
use automata::dfa::DfaBuilder;
use program::commutativity::{CommutativityLevel, CommutativityOracle};
use program::concurrent::{Program, Spec};
use program::stmt::{SimpleStmt, Statement};
use program::thread::{Thread, ThreadId};
use reduction::order::SeqOrder;
use reduction::reduce::{reduction_automaton, ReductionConfig};
use smt::linear::LinExpr;
use smt::term::TermPool;

/// `n` threads, each `k` private writes: fully commutative.
fn independent(pool: &mut TermPool, n: u32, k: u32) -> Program {
    let mut b = Program::builder("independent");
    for t in 0..n {
        let v = pool.var(&format!("x{t}"));
        b.add_global(v, 0);
        let mut cfg = DfaBuilder::new();
        let mut prev = cfg.add_state(false);
        let entry = prev;
        for s in 0..k {
            let l = b.add_statement(Statement::simple(
                ThreadId(t),
                &format!("t{t}s{s}"),
                SimpleStmt::Assign(v, LinExpr::constant(s as i128)),
                pool,
            ));
            let next = cfg.add_state(s + 1 == k);
            cfg.add_transition(prev, l, next);
            prev = next;
        }
        b.add_thread(Thread::new(
            "t",
            cfg.build(entry),
            BitSet::new(k as usize + 1),
        ));
    }
    b.build(pool)
}

fn main() {
    println!("Theorem 7.2: linear-size reductions under seq order + full commutativity\n");
    println!(
        "{:>8} {:>8} {:>10} {:>16} {:>14} {:>12}",
        "threads", "size(P)", "product", "sleep only", "combined", "ratio"
    );
    let k = 2;
    for n in 1..=8u32 {
        let mut pool = TermPool::new();
        let p = independent(&mut pool, n, k);
        let product = p.explicit_product(Spec::PrePost);
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Syntactic);
        let sleep_only = reduction_automaton(
            &mut pool,
            &p,
            Spec::PrePost,
            &SeqOrder::new(),
            &mut oracle,
            ReductionConfig {
                use_sleep: true,
                use_persistent: false,
                max_states: 10_000_000,
            },
        );
        let combined = reduction_automaton(
            &mut pool,
            &p,
            Spec::PrePost,
            &SeqOrder::new(),
            &mut oracle,
            ReductionConfig::default(),
        );
        let ratio = combined.num_states() as f64 / p.size() as f64;
        println!(
            "{n:>8} {:>8} {:>10} {:>16} {:>14} {:>12.2}",
            p.size(),
            product.num_states(),
            sleep_only.num_states(),
            combined.num_states(),
            ratio
        );
        assert!(
            combined.num_states() <= p.size(),
            "Thm 7.2 violated: {} states for size {}",
            combined.num_states(),
            p.size()
        );
    }
    println!();
    println!("The combined column stays ≤ size(P) (linear), the product column is (k+1)^n.");
}
