//! **Certificate audit study**: the cost and the coverage of certified
//! verdicts, in three phases.
//!
//! 1. *Clean sweep* — every conclusive corpus verdict's certificate must
//!    clear the independent checker in `full` mode (pass rate gated at
//!    100%: a fresh certificate that fails the audit is a checker or
//!    recorder bug, either of which is a soundness hole).
//! 2. *Mutation battery* — every applicable single-point mutation of
//!    every clean certificate must be rejected in `full` mode (catch
//!    rate gated at 100%: a surviving mutation means a wrong verdict
//!    could be served as certified).
//! 3. *Warm-serve overhead* — the same corpus served warm from a
//!    persisted store by an in-process daemon, with `--certify off`
//!    versus the default `--certify sample`; the sampled audit must cost
//!    ≤ 10% on the warm path, with bit-identical verdicts. Each mode
//!    serves the corpus for several rounds (the warm workload: the same
//!    verdicts served repeatedly); off and sample passes interleave and
//!    the fastest pass of each mode is scored, so a scheduler stall on
//!    one pass cannot fail the gate.
//!
//! Results go to `BENCH_certify.json` for the jq gates in CI's `certify`
//! job. Run: `cargo run --release -p bench --bin certify_bench`
//! (`SEQVER_QUICK=1` restricts the corpus, as everywhere in the harness.)

use bench::{corpus, fmt_time};
use gemcutter::certify::{check_certificate, CertMutation, Certificate, CertifyMode};
use gemcutter::verify::{verify, Verdict, VerifierConfig};
use serve::client::Client;
use serve::proto::{Status, VerifyOpts};
use serve::server::{ServeConfig, Server};
use smt::term::TermPool;
use std::io::Write;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Every defined mutation kind, injector-supported or battery-only.
const ALL_MUTATIONS: [CertMutation; 7] = [
    CertMutation::WeakenAnnotation,
    CertMutation::DropObligation,
    CertMutation::RehomeAssertion,
    CertMutation::TruncateTrace,
    CertMutation::FlipBound,
    CertMutation::PermuteAnnotation,
    CertMutation::ForeignFingerprint,
];

/// One warm pass against `store` at the given audit tier: verdict lines
/// plus the wall clock and the daemon's audit counters.
struct Pass {
    verdicts: Vec<String>,
    store_hits: u64,
    certs_checked: u64,
    certs_quarantined: u64,
    time_s: f64,
}

fn run_pass(
    store: &std::path::Path,
    programs: &[(String, String)],
    certify: CertifyMode,
    rounds: usize,
) -> Pass {
    let server = Server::bind(ServeConfig {
        store_path: Some(store.to_path_buf()),
        request_timeout: Duration::from_secs(120),
        certify,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let shutdown = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run());

    let mut client =
        Client::connect_with_timeout(&addr, Duration::from_secs(300)).expect("connect");
    let start = Instant::now();
    let mut pass = Pass {
        verdicts: Vec::new(),
        store_hits: 0,
        certs_checked: 0,
        certs_quarantined: 0,
        time_s: 0.0,
    };
    for _ in 0..rounds {
        for (name, source) in programs {
            let t = Instant::now();
            let resp = client
                .verify_source(name, source, VerifyOpts::default())
                .expect("response");
            let ms = t.elapsed().as_secs_f64() * 1e3;
            if std::env::var("CERTIFY_BENCH_TRACE").is_ok() && ms > 2.0 {
                eprintln!(
                    "    slow request: {name} {ms:.1}ms (hit={})",
                    resp.store_hit
                );
            }
            assert_eq!(resp.status, Some(Status::Ok), "{name}: {:?}", resp.reason);
            if resp.store_hit {
                pass.store_hits += 1;
            }
            pass.verdicts.push(resp.verdict_line());
        }
    }
    pass.time_s = start.elapsed().as_secs_f64();
    for (key, value) in client.stats().expect("stats") {
        match key.as_str() {
            "certs-checked" => pass.certs_checked = value.parse().unwrap_or(0),
            "certs-quarantined" => pass.certs_quarantined = value.parse().unwrap_or(0),
            _ => {}
        }
    }
    let _ = client.shutdown();
    drop(client);
    shutdown.store(true, Ordering::Relaxed);
    handle.join().expect("server thread").expect("clean drain");
    pass
}

fn main() {
    let quick = std::env::var("SEQVER_QUICK").is_ok();
    let benchmarks = corpus();
    println!(
        "certificate audit study ({} corpus, {} programs)",
        if quick { "quick" } else { "full" },
        benchmarks.len()
    );

    // Phase 1: clean sweep — verify everything once, full-check every
    // certificate. Serialized texts are kept for the mutation battery.
    let config = VerifierConfig::gemcutter_seq();
    let mut checked = 0u64;
    let mut passed = 0u64;
    let mut gave_up = 0u64;
    let mut fixtures: Vec<(String, String, String)> = Vec::new(); // (name, source, cert text)
    let sweep_start = Instant::now();
    for b in &benchmarks {
        let mut pool = TermPool::new();
        let program = b.compile(&mut pool);
        let outcome = verify(&mut pool, &program, &config);
        if matches!(outcome.verdict, Verdict::GaveUp(_)) {
            gave_up += 1;
            continue;
        }
        let cert = outcome
            .certificate
            .unwrap_or_else(|| panic!("{}: conclusive verdict without a certificate", b.name));
        checked += 1;
        let report = check_certificate(&mut pool, &program, &cert, CertifyMode::Full);
        if report.ok {
            passed += 1;
        } else {
            eprintln!("FAIL {}: {report}", b.name);
        }
        fixtures.push((b.name.clone(), b.source.clone(), cert.to_text()));
    }
    let clean_pass_rate = if checked == 0 {
        0.0
    } else {
        passed as f64 / checked as f64
    };
    println!(
        "  clean sweep: {passed}/{checked} certificates pass full audit ({} gave up) in {}",
        gave_up,
        fmt_time(sweep_start.elapsed().as_secs_f64())
    );

    // Phase 2: mutation battery — every applicable mutation of every
    // clean certificate must be rejected.
    let mut applied = 0u64;
    let mut caught = 0u64;
    let battery_start = Instant::now();
    for (name, source, cert_text) in &fixtures {
        for kind in ALL_MUTATIONS {
            let mut pool = TermPool::new();
            let program = cpl::compile(source, &mut pool).expect("corpus program compiles");
            let mut cert = Certificate::parse(cert_text).expect("fixture certificate parses");
            if !kind.apply(&mut cert, 0) {
                continue; // no applicable site on this certificate shape
            }
            applied += 1;
            let report = check_certificate(&mut pool, &program, &cert, CertifyMode::Full);
            if report.ok {
                eprintln!("SURVIVED {name}: mutation {} passed the audit", kind.name());
            } else {
                caught += 1;
            }
        }
    }
    let mutation_catch_rate = if applied == 0 {
        0.0
    } else {
        caught as f64 / applied as f64
    };
    println!(
        "  mutation battery: {caught}/{applied} mutations caught in {}",
        fmt_time(battery_start.elapsed().as_secs_f64())
    );

    // Phase 3: warm-serve overhead — populate the store cold, then serve
    // the corpus warm with the audit off and with the default sample
    // tier. The sampled audit must stay within 10% of the uncosted path
    // and must not change a single verdict.
    const WARM_ROUNDS: usize = 16;
    const WARM_PASSES: usize = 5;
    let programs: Vec<(String, String)> =
        benchmarks.into_iter().map(|b| (b.name, b.source)).collect();
    let dir = std::env::temp_dir().join(format!("seqver-certify-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let store = dir.join("proofs.store");

    let cold = run_pass(&store, &programs, CertifyMode::Off, 1);
    println!(
        "  cold:        {}  (store-hits {})",
        fmt_time(cold.time_s),
        cold.store_hits
    );
    // Interleaved passes: off and sample alternate, so slow drift in the
    // machine's load lands on both modes alike; the fastest pass of each
    // mode is scored.
    let mut warm_off: Option<Pass> = None;
    let mut warm_sample: Option<Pass> = None;
    for _ in 0..WARM_PASSES {
        let off = run_pass(&store, &programs, CertifyMode::Off, WARM_ROUNDS);
        if warm_off.as_ref().is_none_or(|b| off.time_s < b.time_s) {
            warm_off = Some(off);
        }
        let sample = run_pass(&store, &programs, CertifyMode::Sample, WARM_ROUNDS);
        if warm_sample
            .as_ref()
            .is_none_or(|b| sample.time_s < b.time_s)
        {
            warm_sample = Some(sample);
        }
    }
    let warm_off = warm_off.expect("warm off pass");
    let warm_sample = warm_sample.expect("warm sample pass");
    println!(
        "  warm off:    {}  ({} rounds × {} passes, store-hits {})",
        fmt_time(warm_off.time_s),
        WARM_ROUNDS,
        WARM_PASSES,
        warm_off.store_hits
    );
    println!(
        "  warm sample: {}  (store-hits {}, certs-checked {}, quarantined {})",
        fmt_time(warm_sample.time_s),
        warm_sample.store_hits,
        warm_sample.certs_checked,
        warm_sample.certs_quarantined
    );

    let warm_reference: Vec<String> = cold
        .verdicts
        .iter()
        .cloned()
        .cycle()
        .take(cold.verdicts.len() * WARM_ROUNDS)
        .collect();
    let identity = warm_off.verdicts == warm_reference && warm_sample.verdicts == warm_reference;
    assert!(identity, "a warm pass changed a verdict");
    assert_eq!(
        warm_sample.certs_quarantined, 0,
        "a genuine certificate was quarantined"
    );
    let sample_overhead = if warm_off.time_s > 0.0 {
        warm_sample.time_s / warm_off.time_s - 1.0
    } else {
        f64::NAN
    };
    println!(
        "  identity: {identity}   clean pass rate {clean_pass_rate:.4}   \
         catch rate {mutation_catch_rate:.4}   sample overhead {:+.1}%",
        sample_overhead * 100.0
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"corpus\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    json.push_str(&format!("  \"benchmarks\": {},\n", programs.len()));
    json.push_str(&format!("  \"gave_up\": {gave_up},\n"));
    json.push_str(&format!("  \"certs_checked\": {checked},\n"));
    json.push_str(&format!("  \"certs_passed\": {passed},\n"));
    json.push_str(&format!("  \"clean_pass_rate\": {clean_pass_rate:.4},\n"));
    json.push_str(&format!("  \"mutations_applied\": {applied},\n"));
    json.push_str(&format!("  \"mutations_caught\": {caught},\n"));
    json.push_str(&format!(
        "  \"mutation_catch_rate\": {mutation_catch_rate:.4},\n"
    ));
    json.push_str(&format!("  \"identity\": {identity},\n"));
    json.push_str(&format!("  \"warm_off_time_s\": {:.6},\n", warm_off.time_s));
    json.push_str(&format!(
        "  \"warm_sample_time_s\": {:.6},\n",
        warm_sample.time_s
    ));
    json.push_str(&format!(
        "  \"sample_quarantined\": {},\n",
        warm_sample.certs_quarantined
    ));
    json.push_str(&format!("  \"sample_overhead\": {sample_overhead:.4}\n"));
    json.push_str("}\n");
    let mut f = std::fs::File::create("BENCH_certify.json").expect("create BENCH_certify.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_certify.json");
    println!("  wrote BENCH_certify.json");
    let _ = std::fs::remove_dir_all(&dir);
}
