//! Shared harness code for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md's experiment index). This library provides
//! the common machinery: running a corpus under a configuration, the
//! portfolio model, and plain-text table/series formatting.

use bench_suite::{Benchmark, Expected, Suite};
use gemcutter::portfolio::{
    default_portfolio, parallel_verify, portfolio_verify, EngineReport, ParallelConfig,
};
use gemcutter::supervise::{supervised_verify, RetryPolicy, SuperviseConfig};
use gemcutter::verify::{verify, Outcome, Verdict, VerifierConfig};
use smt::term::TermPool;

/// The result of one (benchmark, configuration) run.
#[derive(Clone, Debug)]
pub struct Run {
    /// Benchmark name.
    pub name: String,
    /// Suite membership.
    pub suite: Suite,
    /// Ground truth.
    pub expected: Expected,
    /// Configuration name.
    pub config: String,
    /// Outcome.
    pub outcome: Outcome,
}

impl Run {
    /// `true` if the verdict is conclusive and matches the ground truth.
    pub fn successful(&self) -> bool {
        matches!(
            (&self.outcome.verdict, self.expected),
            (Verdict::Correct, Expected::Safe) | (Verdict::Incorrect { .. }, Expected::Unsafe)
        )
    }

    /// `true` if the verdict is conclusive but contradicts ground truth —
    /// this would indicate a soundness bug and is asserted against.
    pub fn contradicts_ground_truth(&self) -> bool {
        matches!(
            (&self.outcome.verdict, self.expected),
            (Verdict::Correct, Expected::Unsafe) | (Verdict::Incorrect { .. }, Expected::Safe)
        )
    }

    /// Memory proxy: visited proof-check states.
    pub fn memory(&self) -> usize {
        self.outcome.stats.visited_states
    }

    /// CPU time in seconds.
    pub fn time_s(&self) -> f64 {
        self.outcome.stats.time.as_secs_f64()
    }
}

/// Runs `benchmarks` under `config`.
///
/// # Panics
///
/// Panics if any verdict contradicts the ground truth (soundness bug).
pub fn run_config(benchmarks: &[Benchmark], config: &VerifierConfig) -> Vec<Run> {
    benchmarks
        .iter()
        .map(|b| {
            let mut pool = TermPool::new();
            let p = b.compile(&mut pool);
            let outcome = verify(&mut pool, &p, config);
            let run = Run {
                name: b.name.clone(),
                suite: b.suite,
                expected: b.expected,
                config: config.name.clone(),
                outcome,
            };
            assert!(
                !run.contradicts_ground_truth(),
                "SOUNDNESS BUG on {}: {:?} but expected {:?}",
                run.name,
                run.outcome.verdict,
                run.expected
            );
            run
        })
        .collect()
}

/// Runs the five-order portfolio on `benchmarks` (parallel model: the
/// fastest conclusive member's outcome is reported). When `full` is set,
/// every member runs even after a success — needed by Figure 8.
pub fn run_portfolio(benchmarks: &[Benchmark], full: bool) -> Vec<(Run, Vec<(String, Outcome)>)> {
    benchmarks
        .iter()
        .map(|b| {
            let mut pool = TermPool::new();
            let p = b.compile(&mut pool);
            let result = portfolio_verify(&mut pool, &p, &default_portfolio(), !full);
            let run = Run {
                name: b.name.clone(),
                suite: b.suite,
                expected: b.expected,
                config: result
                    .winner
                    .clone()
                    .unwrap_or_else(|| "portfolio".to_owned()),
                outcome: result.outcome.clone(),
            };
            assert!(
                !run.contradicts_ground_truth(),
                "SOUNDNESS BUG on {}: {:?} but expected {:?}",
                run.name,
                run.outcome.verdict,
                run.expected
            );
            (run, result.members)
        })
        .collect()
}

/// Runs the **multi-threaded shared-proof portfolio** on `benchmarks`:
/// every preference order refines on its own OS thread, exchanging newly
/// discovered assertions through the coordinator. `configs` defaults to
/// the five §8 orders when empty.
pub fn run_parallel(
    benchmarks: &[Benchmark],
    configs: &[VerifierConfig],
    pcfg: &ParallelConfig,
) -> Vec<(Run, Vec<EngineReport>)> {
    let default_configs;
    let configs = if configs.is_empty() {
        default_configs = default_portfolio();
        &default_configs
    } else {
        configs
    };
    benchmarks
        .iter()
        .map(|b| {
            let mut pool = TermPool::new();
            let p = b.compile(&mut pool);
            let result = parallel_verify(&pool, &p, configs, pcfg);
            let run = Run {
                name: b.name.clone(),
                suite: b.suite,
                expected: b.expected,
                config: result
                    .winner
                    .clone()
                    .unwrap_or_else(|| "parallel".to_owned()),
                outcome: result.outcome.clone(),
            };
            assert!(
                !run.contradicts_ground_truth(),
                "SOUNDNESS BUG on {}: {:?} but expected {:?}",
                run.name,
                run.outcome.verdict,
                run.expected
            );
            (run, result.engines)
        })
        .collect()
}

/// The result of one supervised (restart-ladder) run: the plain [`Run`]
/// plus the supervision counters the recovery tables report.
#[derive(Clone, Debug)]
pub struct SupervisedRun {
    /// The final-attempt outcome, comparable to any other [`Run`].
    pub run: Run,
    /// Attempts beyond the first (0 = converged without restarting).
    pub retries_used: usize,
    /// Assertions recycled into the final attempt's initial proof.
    pub recycled: usize,
    /// Refinement rounds whose work the final attempt did not repeat.
    pub rounds_skipped: usize,
    /// `rounds_skipped / (rounds_skipped + final-attempt rounds)`.
    pub hit_rate: f64,
}

/// Runs `benchmarks` under `config` wrapped in the restart supervisor
/// with `policy` (escalation ladder + proof recycling, no checkpointing).
///
/// # Panics
///
/// Panics if any verdict contradicts the ground truth (soundness bug).
pub fn run_supervised(
    benchmarks: &[Benchmark],
    config: &VerifierConfig,
    policy: RetryPolicy,
) -> Vec<SupervisedRun> {
    benchmarks
        .iter()
        .map(|b| {
            let mut pool = TermPool::new();
            let p = b.compile(&mut pool);
            let sup = supervised_verify(&mut pool, &p, config, &SuperviseConfig::retrying(policy));
            let run = Run {
                name: b.name.clone(),
                suite: b.suite,
                expected: b.expected,
                config: config.name.clone(),
                outcome: sup.outcome.clone(),
            };
            assert!(
                !run.contradicts_ground_truth(),
                "SOUNDNESS BUG on {}: {:?} but expected {:?}",
                run.name,
                run.outcome.verdict,
                run.expected
            );
            SupervisedRun {
                run,
                retries_used: sup.retries_used(),
                recycled: sup.recycled_assertions,
                rounds_skipped: sup.rounds_skipped,
                hit_rate: sup.recycle_hit_rate(),
            }
        })
        .collect()
}

/// Aggregate row: count, total time, total memory proxy, total rounds.
#[derive(Clone, Copy, Debug, Default)]
pub struct Aggregate {
    /// Number of runs aggregated.
    pub count: usize,
    /// Total CPU time (s).
    pub time_s: f64,
    /// Total memory proxy (visited states).
    pub memory: usize,
    /// Total refinement rounds.
    pub rounds: usize,
    /// Total proof size.
    pub proof_size: usize,
}

impl Aggregate {
    /// Accumulates successful runs from `runs` filtered by `keep`.
    pub fn of<'a>(
        runs: impl IntoIterator<Item = &'a Run>,
        keep: impl Fn(&Run) -> bool,
    ) -> Aggregate {
        let mut agg = Aggregate::default();
        for r in runs {
            if r.successful() && keep(r) {
                agg.count += 1;
                agg.time_s += r.time_s();
                agg.memory += r.memory();
                agg.rounds += r.outcome.stats.rounds;
                agg.proof_size += r.outcome.stats.proof_size;
            }
        }
        agg
    }
}

/// Prints a quantile series: point `x` is the x-th smallest value.
pub fn print_quantile_series(label: &str, mut values: Vec<f64>) {
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    println!("  {label}:");
    for (i, v) in values.iter().enumerate() {
        println!("    {:3} {v:.6}", i + 1);
    }
}

/// Formats seconds in a compact human unit.
pub fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.2}s")
    } else {
        format!("{:.1}ms", seconds * 1e3)
    }
}

/// The corpus restricted by the `SEQVER_QUICK` environment variable: when
/// set, only benchmarks with small indices/parameters run (used to smoke-
/// test the harnesses quickly).
pub fn corpus() -> Vec<Benchmark> {
    let all = bench_suite::all();
    if std::env::var("SEQVER_QUICK").is_ok() {
        all.into_iter()
            .filter(|b| !b.name.ends_with("-4") && !b.name.ends_with("-3"))
            .collect()
    } else {
        all
    }
}
