//! A small blocking client for the `seqver serve` protocol — what
//! `seqver submit`, the recovery tests and the warm-start bench speak.

use crate::proto::{
    write_frame, Command, FrameEvent, FrameReader, Request, Response, VerifyOpts, MAX_FRAME,
};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Socket read-timeout tick driving the response wait loop.
const TICK: Duration = Duration::from_millis(25);

/// One connection to a daemon. Requests are strictly
/// send-one/receive-one, which is all the batch workloads need.
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    /// How long to wait for each response before giving up.
    timeout: Duration,
}

impl Client {
    /// Connects with a 60 s response timeout.
    pub fn connect(addr: &str) -> Result<Client, String> {
        Client::connect_with_timeout(addr, Duration::from_secs(60))
    }

    /// Connects with an explicit per-response timeout.
    pub fn connect_with_timeout(addr: &str, timeout: Duration) -> Result<Client, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
        stream
            .set_read_timeout(Some(TICK))
            .map_err(|e| format!("cannot set read timeout: {e}"))?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            reader: FrameReader::new(MAX_FRAME),
            timeout,
        })
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, String> {
        write_frame(&mut self.stream, &request.to_text())
            .map_err(|e| format!("cannot send request: {e}"))?;
        let start = Instant::now();
        loop {
            match self
                .reader
                .read_frame(
                    &mut self.stream,
                    TICK.max(Duration::from_millis(100)),
                    self.timeout,
                )
                .map_err(|e| format!("cannot read response: {e}"))?
            {
                FrameEvent::Frame(payload) => return Response::parse(&payload),
                FrameEvent::Closed => {
                    return Err("server closed the connection before responding".to_owned())
                }
                FrameEvent::Idle => {
                    if start.elapsed() >= self.timeout {
                        return Err(format!(
                            "no response within {:?} (request `{}`)",
                            self.timeout, request.id
                        ));
                    }
                }
            }
        }
    }

    /// Verifies one CPL source.
    pub fn verify_source(
        &mut self,
        id: &str,
        source: &str,
        opts: VerifyOpts,
    ) -> Result<Response, String> {
        self.request(&Request {
            id: id.to_owned(),
            cmd: Command::Verify {
                source: source.to_owned(),
                opts,
            },
        })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<Response, String> {
        self.request(&Request::control("ping", Command::Ping))
    }

    /// Server counter snapshot, as `key=value` pairs.
    pub fn stats(&mut self) -> Result<Vec<(String, String)>, String> {
        Ok(self
            .request(&Request::control("stats", Command::Stats))?
            .info)
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<Response, String> {
        self.request(&Request::control("shutdown", Command::Shutdown))
    }
}
