//! Certified verdicts: pool-independent proof certificates and their
//! independent checker.
//!
//! Every CORRECT verdict carries the annotation-level image of the
//! covered reduction recorded by [`crate::check::record_reduction`] — the
//! Floyd/Hoare annotation as [`ExportedTerm`]s, the annotation transition
//! table, and every solver fact the traversal relied on (bottoms, post
//! entailments, commutativity claims). Every BUG verdict carries the
//! counterexample trace. [`check_certificate`] re-validates either kind
//! with a deliberately small trusted base, independent of the engine that
//! produced the verdict:
//!
//! * the reduction's structural coverage is replayed from the certificate
//!   alone and re-checked as a language inclusion via `crates/automata`;
//! * every Hoare obligation is re-discharged with the legacy DPLL solver
//!   (`--solver=dpll`), the query cache disabled, so a CDCL or cache bug
//!   cannot confirm its own output;
//! * bug traces are replayed concretely through `program::interp`,
//!   branching over escalating havoc domains, with an SSA feasibility
//!   check as the fallback for witnesses outside the concrete domains.
//!
//! The checker trusts: the term pool's evaluator/DPLL core, the
//! `crates/automata` inclusion check, and the program representation
//! itself. It does **not** trust the CDCL solver, the query cache, the
//! interpolation engine, the useless-state cache, or the store.

use crate::check::{CheckConfig, RecordedReduction};
use crate::interpolate::{analyze_trace, InterpolationStats, TraceResult};
use crate::proof::ProofAutomaton;
use crate::snapshot::program_fingerprint;
use crate::verify::{specs_of, OrderSpec};
use automata::bitset::BitSet;
use automata::dfa::{Dfa, DfaBuilder, StateId};
use automata::ops;
use program::commutativity::{CommutativityLevel, CommutativityOracle};
use program::concurrent::{LetterId, ProductState, Program, Spec};
use program::interp::Interpreter;
use program::thread::ThreadId;
use reduction::order::OrderContext;
use reduction::persistent::{MembraneMode, PersistentSets};
use smt::resource::{Category, ResourceGovernor};
use smt::solver::{check as smt_check, entails, SolverKind};
use smt::term::{TermId, TermPool};
use smt::transfer::ExportedTerm;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// How thoroughly a certificate is re-checked.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CertifyMode {
    /// No checking; certificates pass through untouched.
    Off,
    /// Solver-free integrity tier: full replay of the reduction DFS from
    /// the certificate, automata-level inclusion against the annotation
    /// table, and all consistency rules. Recorded solver facts (bottoms,
    /// post entailments, commutativity claims) are trusted.
    Structural,
    /// Cheap spot-check for hot paths: all consistency rules plus a
    /// deterministic, budget-capped sample of the solver obligations (a
    /// 1-in-8 stripe rotated by the program fingerprint, at most
    /// [`SAMPLE_BUDGET`] re-discharged per check). The product replay is
    /// skipped to bound latency; full coverage is the `full` tier's job.
    #[default]
    Sample,
    /// Everything: structural replay, inclusion, and every solver
    /// obligation re-discharged.
    Full,
}

impl CertifyMode {
    /// Stable name, the inverse of [`CertifyMode::parse`].
    pub fn name(self) -> &'static str {
        match self {
            CertifyMode::Off => "off",
            CertifyMode::Structural => "structural",
            CertifyMode::Sample => "sample",
            CertifyMode::Full => "full",
        }
    }

    /// Parses `"off" | "structural" | "sample" | "full"`.
    pub fn parse(s: &str) -> Result<CertifyMode, String> {
        match s {
            "off" => Ok(CertifyMode::Off),
            "structural" => Ok(CertifyMode::Structural),
            "sample" => Ok(CertifyMode::Sample),
            "full" => Ok(CertifyMode::Full),
            other => Err(format!(
                "unknown certify mode `{other}` (expected off|structural|sample|full)"
            )),
        }
    }
}

/// Pool-independent image of a [`Spec`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertSpec {
    /// The pre/post specification.
    PrePost,
    /// The assert specification for the given thread index.
    ErrorOf(u32),
}

impl CertSpec {
    /// The corresponding in-memory [`Spec`].
    pub fn to_spec(self) -> Spec {
        match self {
            CertSpec::PrePost => Spec::PrePost,
            CertSpec::ErrorOf(t) => Spec::ErrorOf(ThreadId(t)),
        }
    }

    /// The pool-independent image of `spec`.
    pub fn of(spec: Spec) -> CertSpec {
        match spec {
            Spec::PrePost => CertSpec::PrePost,
            Spec::ErrorOf(t) => CertSpec::ErrorOf(t.0),
        }
    }

    fn to_text(self) -> String {
        match self {
            CertSpec::PrePost => "pre-post".to_owned(),
            CertSpec::ErrorOf(t) => format!("error-of {t}"),
        }
    }

    fn parse(s: &str) -> Result<CertSpec, String> {
        if s == "pre-post" {
            return Ok(CertSpec::PrePost);
        }
        if let Some(t) = s.strip_prefix("error-of ") {
            return t
                .parse::<u32>()
                .map(CertSpec::ErrorOf)
                .map_err(|e| format!("bad spec thread: {e}"));
        }
        Err(format!("unknown spec `{s}`"))
    }
}

/// The certificate for one specification of a CORRECT verdict: the
/// Floyd/Hoare annotation (as a deduplicated node table over exported
/// assertions) plus everything needed to replay the covered reduction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecCert {
    /// Which specification this certifies.
    pub spec: CertSpec,
    /// The preference order the reduction was computed under.
    pub order: OrderSpec,
    /// Sleep sets were applied.
    pub use_sleep: bool,
    /// Weakly persistent membranes were applied.
    pub use_persistent: bool,
    /// Sleep commutativity was conditioned on `⋀Φ`.
    pub proof_sensitive: bool,
    /// The proof's assertions, pool-independent.
    pub assertions: Vec<ExportedTerm>,
    /// Annotation node table: each node is a sorted set of assertion
    /// indices.
    pub annotations: Vec<Vec<u32>>,
    /// Node covering the initial product state.
    pub initial: u32,
    /// Annotation transitions `(node, letter, node)`, sorted.
    pub edges: Vec<(u32, u32, u32)>,
    /// Nodes whose conjunction is claimed unsatisfiable (covered).
    pub bottoms: Vec<u32>,
    /// Nodes claimed to entail the postcondition at accepting states.
    pub safes: Vec<u32>,
    /// Proof-sensitive commutativity claims `(a, b, node)`:
    /// `a ↷↷_φ b` with `φ = ⋀ann(node)`.
    pub claims: Vec<(u32, u32, u32)>,
    /// Unconditional commutativity claims `(a, b)` with `a < b`.
    pub ucommute: Vec<(u32, u32)>,
}

impl SpecCert {
    /// Builds the pool-independent certificate from a recorded reduction.
    ///
    /// Proof states are renumbered densely in `ProofStateId` order, so two
    /// runs that build the same proof produce byte-identical certificates.
    pub fn from_recorded(
        pool: &TermPool,
        proof: &ProofAutomaton,
        rec: &RecordedReduction,
        spec: Spec,
        order: &OrderSpec,
        config: &CheckConfig,
    ) -> SpecCert {
        let mut states: BTreeSet<u32> = BTreeSet::new();
        states.insert(rec.initial.0);
        for &(f, _, t) in &rec.edges {
            states.insert(f.0);
            states.insert(t.0);
        }
        for &s in &rec.bottoms {
            states.insert(s.0);
        }
        for &s in &rec.safes {
            states.insert(s.0);
        }
        for &(_, _, s) in &rec.claims {
            states.insert(s.0);
        }
        let index: HashMap<u32, u32> = states
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u32))
            .collect();
        let annotations: Vec<Vec<u32>> = states
            .iter()
            .map(|&s| proof.assertion_set(crate::proof::ProofStateId(s)).to_vec())
            .collect();
        SpecCert {
            spec: CertSpec::of(spec),
            order: order.clone(),
            use_sleep: config.use_sleep,
            use_persistent: config.use_persistent,
            proof_sensitive: config.proof_sensitive,
            assertions: proof.assertions().iter().map(|&t| pool.export(t)).collect(),
            annotations,
            initial: index[&rec.initial.0],
            edges: rec
                .edges
                .iter()
                .map(|&(f, l, t)| (index[&f.0], l.0, index[&t.0]))
                .collect(),
            bottoms: rec.bottoms.iter().map(|s| index[&s.0]).collect(),
            safes: rec.safes.iter().map(|s| index[&s.0]).collect(),
            claims: rec
                .claims
                .iter()
                .map(|&(a, b, s)| (a.0, b.0, index[&s.0]))
                .collect(),
            ucommute: rec.ucommute.iter().map(|&(a, b)| (a.0, b.0)).collect(),
        }
    }
}

/// A checkable verdict certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Certificate {
    /// Correct: one [`SpecCert`] per specification, in `specs_of` order.
    Correct {
        /// Fingerprint of the program the certificate was built for.
        fingerprint: u64,
        /// Per-specification proof certificates.
        specs: Vec<SpecCert>,
    },
    /// Incorrect: a counterexample trace violating one specification.
    Bug {
        /// Fingerprint of the program the certificate was built for.
        fingerprint: u64,
        /// The violated specification.
        spec: CertSpec,
        /// The violating trace, as letter indices.
        trace: Vec<u32>,
    },
}

impl Certificate {
    /// The program fingerprint the certificate binds to.
    pub fn fingerprint(&self) -> u64 {
        match self {
            Certificate::Correct { fingerprint, .. } => *fingerprint,
            Certificate::Bug { fingerprint, .. } => *fingerprint,
        }
    }

    /// Serializes to a sequence of single-line records (no line is empty,
    /// none contains a newline) — the store embeds each under a `cert:`
    /// key.
    pub fn to_lines(&self) -> Vec<String> {
        let mut out = vec!["cert-format 1".to_owned()];
        match self {
            Certificate::Correct { fingerprint, specs } => {
                out.push(format!("verdict correct {fingerprint} {}", specs.len()));
                for sc in specs {
                    out.push(format!("spec {}", sc.spec.to_text()));
                    out.push(format!("order {}", order_to_text(&sc.order)));
                    out.push(format!(
                        "flags sleep={} persistent={} ps={}",
                        sc.use_sleep as u8, sc.use_persistent as u8, sc.proof_sensitive as u8
                    ));
                    for a in &sc.assertions {
                        out.push(format!("assert {}", a.to_text()));
                    }
                    for ann in &sc.annotations {
                        let mut line = "ann".to_owned();
                        for i in ann {
                            line.push(' ');
                            line.push_str(&i.to_string());
                        }
                        out.push(line);
                    }
                    out.push(format!("init {}", sc.initial));
                    for &(f, l, t) in &sc.edges {
                        out.push(format!("edge {f} {l} {t}"));
                    }
                    for &b in &sc.bottoms {
                        out.push(format!("bottom {b}"));
                    }
                    for &s in &sc.safes {
                        out.push(format!("safe {s}"));
                    }
                    for &(a, b, s) in &sc.claims {
                        out.push(format!("claim {a} {b} {s}"));
                    }
                    for &(a, b) in &sc.ucommute {
                        out.push(format!("ucommute {a} {b}"));
                    }
                    out.push("end-spec".to_owned());
                }
            }
            Certificate::Bug {
                fingerprint,
                spec,
                trace,
            } => {
                out.push(format!("verdict bug {fingerprint}"));
                out.push(format!("spec {}", spec.to_text()));
                let mut line = "trace".to_owned();
                for l in trace {
                    line.push(' ');
                    line.push_str(&l.to_string());
                }
                out.push(line);
            }
        }
        out.push("end-cert".to_owned());
        out
    }

    /// The certificate as one newline-joined text block.
    pub fn to_text(&self) -> String {
        self.to_lines().join("\n")
    }

    /// Parses the output of [`Certificate::to_lines`].
    pub fn from_lines<'a, I: IntoIterator<Item = &'a str>>(
        lines: I,
    ) -> Result<Certificate, String> {
        let mut it = lines.into_iter();
        let next = |it: &mut I::IntoIter| -> Result<&'a str, String> {
            it.next().ok_or_else(|| "truncated certificate".to_owned())
        };
        let header = next(&mut it)?;
        if header != "cert-format 1" {
            return Err(format!("unknown certificate format `{header}`"));
        }
        let verdict = next(&mut it)?;
        let cert = if let Some(rest) = verdict.strip_prefix("verdict correct ") {
            let mut parts = rest.split(' ');
            let fingerprint: u64 = parts
                .next()
                .ok_or("missing fingerprint")?
                .parse()
                .map_err(|e| format!("bad fingerprint: {e}"))?;
            let n: usize = parts
                .next()
                .ok_or("missing spec count")?
                .parse()
                .map_err(|e| format!("bad spec count: {e}"))?;
            let mut specs = Vec::with_capacity(n);
            for _ in 0..n {
                specs.push(parse_spec_cert(&mut it)?);
            }
            Certificate::Correct { fingerprint, specs }
        } else if let Some(rest) = verdict.strip_prefix("verdict bug ") {
            let fingerprint: u64 = rest.parse().map_err(|e| format!("bad fingerprint: {e}"))?;
            let spec_line = next(&mut it)?;
            let spec = CertSpec::parse(
                spec_line
                    .strip_prefix("spec ")
                    .ok_or_else(|| format!("expected spec line, got `{spec_line}`"))?,
            )?;
            let trace_line = next(&mut it)?;
            let rest = trace_line
                .strip_prefix("trace")
                .ok_or_else(|| format!("expected trace line, got `{trace_line}`"))?;
            let trace = rest
                .split_whitespace()
                .map(|t| {
                    t.parse::<u32>()
                        .map_err(|e| format!("bad trace letter: {e}"))
                })
                .collect::<Result<Vec<u32>, String>>()?;
            Certificate::Bug {
                fingerprint,
                spec,
                trace,
            }
        } else {
            return Err(format!("unknown verdict line `{verdict}`"));
        };
        let end = next(&mut it)?;
        if end != "end-cert" {
            return Err(format!("expected end-cert, got `{end}`"));
        }
        Ok(cert)
    }

    /// Parses a newline-joined text block.
    pub fn parse(text: &str) -> Result<Certificate, String> {
        Certificate::from_lines(text.lines())
    }
}

fn order_to_text(o: &OrderSpec) -> String {
    match o {
        OrderSpec::Seq => "seq".to_owned(),
        OrderSpec::Lockstep => "lockstep".to_owned(),
        OrderSpec::Random(s) => format!("rand {s}"),
        OrderSpec::Priority(p) => {
            let body: Vec<String> = p.iter().map(|t| t.to_string()).collect();
            format!("priority {}", body.join(","))
        }
    }
}

fn order_from_text(s: &str) -> Result<OrderSpec, String> {
    match s {
        "seq" => return Ok(OrderSpec::Seq),
        "lockstep" => return Ok(OrderSpec::Lockstep),
        _ => {}
    }
    if let Some(seed) = s.strip_prefix("rand ") {
        return seed
            .parse::<u64>()
            .map(OrderSpec::Random)
            .map_err(|e| format!("bad order seed: {e}"));
    }
    if let Some(body) = s.strip_prefix("priority ") {
        let p = body
            .split(',')
            .map(|t| t.parse::<u32>().map_err(|e| format!("bad priority: {e}")))
            .collect::<Result<Vec<u32>, String>>()?;
        return Ok(OrderSpec::Priority(p));
    }
    Err(format!("unknown order `{s}`"))
}

fn parse_spec_cert<'a>(it: &mut impl Iterator<Item = &'a str>) -> Result<SpecCert, String> {
    let mut spec = None;
    let mut order = None;
    let mut flags = None;
    let mut assertions = Vec::new();
    let mut annotations = Vec::new();
    let mut initial = None;
    let mut edges = Vec::new();
    let mut bottoms = Vec::new();
    let mut safes = Vec::new();
    let mut claims = Vec::new();
    let mut ucommute = Vec::new();
    for line in it {
        if line == "end-spec" {
            let (use_sleep, use_persistent, proof_sensitive) = flags.ok_or("missing flags line")?;
            return Ok(SpecCert {
                spec: spec.ok_or("missing spec line")?,
                order: order.ok_or("missing order line")?,
                use_sleep,
                use_persistent,
                proof_sensitive,
                assertions,
                annotations,
                initial: initial.ok_or("missing init line")?,
                edges,
                bottoms,
                safes,
                claims,
                ucommute,
            });
        }
        if let Some(rest) = line.strip_prefix("spec ") {
            spec = Some(CertSpec::parse(rest)?);
        } else if let Some(rest) = line.strip_prefix("order ") {
            order = Some(order_from_text(rest)?);
        } else if let Some(rest) = line.strip_prefix("flags ") {
            let mut sleep = None;
            let mut persistent = None;
            let mut ps = None;
            for tok in rest.split(' ') {
                let (key, val) = tok.split_once('=').ok_or("bad flags token")?;
                let b = match val {
                    "0" => false,
                    "1" => true,
                    _ => return Err(format!("bad flag value `{val}`")),
                };
                match key {
                    "sleep" => sleep = Some(b),
                    "persistent" => persistent = Some(b),
                    "ps" => ps = Some(b),
                    _ => return Err(format!("unknown flag `{key}`")),
                }
            }
            flags = Some((
                sleep.ok_or("missing sleep flag")?,
                persistent.ok_or("missing persistent flag")?,
                ps.ok_or("missing ps flag")?,
            ));
        } else if let Some(rest) = line.strip_prefix("assert ") {
            assertions.push(ExportedTerm::parse(rest)?);
        } else if let Some(rest) = line.strip_prefix("ann") {
            let set = rest
                .split_whitespace()
                .map(|t| t.parse::<u32>().map_err(|e| format!("bad ann index: {e}")))
                .collect::<Result<Vec<u32>, String>>()?;
            annotations.push(set);
        } else if let Some(rest) = line.strip_prefix("init ") {
            initial = Some(rest.parse::<u32>().map_err(|e| format!("bad init: {e}"))?);
        } else if let Some(rest) = line.strip_prefix("edge ") {
            edges.push(parse_triple(rest)?);
        } else if let Some(rest) = line.strip_prefix("bottom ") {
            bottoms.push(
                rest.parse::<u32>()
                    .map_err(|e| format!("bad bottom: {e}"))?,
            );
        } else if let Some(rest) = line.strip_prefix("safe ") {
            safes.push(rest.parse::<u32>().map_err(|e| format!("bad safe: {e}"))?);
        } else if let Some(rest) = line.strip_prefix("claim ") {
            claims.push(parse_triple(rest)?);
        } else if let Some(rest) = line.strip_prefix("ucommute ") {
            let mut parts = rest.split(' ');
            let a = parse_u32(parts.next())?;
            let b = parse_u32(parts.next())?;
            ucommute.push((a, b));
        } else {
            return Err(format!("unknown certificate line `{line}`"));
        }
    }
    Err("truncated certificate (missing end-spec)".to_owned())
}

fn parse_u32(tok: Option<&str>) -> Result<u32, String> {
    tok.ok_or("missing field")?
        .parse::<u32>()
        .map_err(|e| format!("bad field: {e}"))
}

fn parse_triple(s: &str) -> Result<(u32, u32, u32), String> {
    let mut parts = s.split(' ');
    Ok((
        parse_u32(parts.next())?,
        parse_u32(parts.next())?,
        parse_u32(parts.next())?,
    ))
}

/// Outcome of a certificate check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertifyReport {
    /// The certificate validates under the requested mode.
    pub ok: bool,
    /// Why it was rejected (empty when `ok`).
    pub reason: String,
    /// Solver obligations enumerated (whether or not sampled in).
    pub obligations: usize,
    /// Solver obligations actually re-discharged.
    pub checked: usize,
}

impl CertifyReport {
    fn pass(obligations: usize, checked: usize) -> CertifyReport {
        CertifyReport {
            ok: true,
            reason: String::new(),
            obligations,
            checked,
        }
    }

    fn fail(reason: impl Into<String>, obligations: usize, checked: usize) -> CertifyReport {
        CertifyReport {
            ok: false,
            reason: reason.into(),
            obligations,
            checked,
        }
    }
}

impl fmt::Display for CertifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ok {
            write!(
                f,
                "ok ({} obligations, {} re-discharged)",
                self.obligations, self.checked
            )
        } else {
            write!(f, "REJECTED: {}", self.reason)
        }
    }
}

/// Re-validates `cert` against a freshly compiled `program` in `pool`.
///
/// The pool is temporarily switched to the DPLL solver with the query
/// cache removed and an unlimited governor, so every re-discharged
/// obligation is answered by a code path independent of the CDCL engine
/// and of any cached result; the previous solver, cache, and governor are
/// restored before returning. The check runs to completion — callers on
/// latency-sensitive paths should use [`CertifyMode::Sample`] or
/// [`CertifyMode::Structural`].
pub fn check_certificate(
    pool: &mut TermPool,
    program: &Program,
    cert: &Certificate,
    mode: CertifyMode,
) -> CertifyReport {
    if mode == CertifyMode::Off {
        return CertifyReport::pass(0, 0);
    }
    let saved_kind = pool.solver_kind();
    let saved_cache = pool.take_query_cache();
    let saved_governor = pool.governor().clone();
    pool.set_solver_kind(SolverKind::Dpll);
    // The sample tier runs under a small deterministic step budget: a
    // governor trip mid-obligation means the spot-check ran out of
    // latency budget, not that the certificate is wrong, and the caller
    // stops re-discharging instead of rejecting. Full and structural
    // checks run to completion.
    let governor = if mode == CertifyMode::Sample {
        ResourceGovernor::builder()
            .budget(Category::DpllDecisions, SAMPLE_DECISION_BUDGET)
            .budget(Category::SimplexPivots, 16 * SAMPLE_DECISION_BUDGET)
            .build()
    } else {
        ResourceGovernor::unlimited()
    };
    pool.set_governor(governor);
    let report = check_inner(pool, program, cert, mode);
    pool.set_solver_kind(saved_kind);
    pool.set_governor(saved_governor);
    if let Some(cache) = saved_cache {
        pool.set_query_cache(cache);
    }
    report
}

/// Upper bound on solver obligations re-discharged per `Sample` check.
///
/// The sample tier guards the warm-serve path, where the whole audit has
/// a latency budget of a small fraction of a request (~100µs against a
/// ~1ms warm hit); a single pathological obligation can cost hundreds of
/// microseconds to re-discharge, so the spot-check is capped by count,
/// not by rate alone.
pub const SAMPLE_BUDGET: usize = 2;

/// Per-obligation size cap for the sample tier, in constraint atoms.
///
/// The fresh-pool DPLL re-discharge is worst-case exponential in the
/// formula, so a count budget alone does not bound latency — one
/// obligation over a wide annotation conjunction can cost milliseconds.
/// Sampled obligations whose certificate-side formulas exceed this many
/// atoms are skipped (left to the `full` tier) instead of re-discharged.
pub const SAMPLE_ATOM_CAP: usize = 24;

/// Boolean-search step budget for one `Sample` check (charged per DPLL
/// branch node; the simplex budget scales off it). The atom cap bounds
/// the *size* of what the spot-check attempts; this bounds the *time* —
/// DPLL is worst-case exponential, so even a small formula can blow the
/// latency budget without a step cap. A trip is a skip, never a reject.
pub const SAMPLE_DECISION_BUDGET: u64 = 2_000;

/// Number of constraint atoms in an exported term — the cost proxy the
/// sample tier budgets obligations by.
fn atom_count(t: &ExportedTerm) -> usize {
    match t {
        ExportedTerm::True | ExportedTerm::False => 0,
        ExportedTerm::Atom { .. } => 1,
        ExportedTerm::And(cs) | ExportedTerm::Or(cs) => cs.iter().map(atom_count).sum(),
    }
}

/// Memoized on-demand interning of a certificate's assertions and
/// annotation conjunctions: nothing is imported until an obligation that
/// uses it is actually re-discharged.
struct LazyImports<'a> {
    sc: &'a SpecCert,
    terms: Vec<Option<TermId>>,
    conjs: Vec<Option<TermId>>,
}

impl<'a> LazyImports<'a> {
    fn new(sc: &'a SpecCert) -> LazyImports<'a> {
        LazyImports {
            sc,
            terms: vec![None; sc.assertions.len()],
            conjs: vec![None; sc.annotations.len()],
        }
    }

    /// The interned assertion `i`.
    fn term(&mut self, pool: &mut TermPool, i: usize) -> TermId {
        if let Some(t) = self.terms[i] {
            return t;
        }
        let t = pool.import(&self.sc.assertions[i]);
        self.terms[i] = Some(t);
        t
    }

    /// The interned conjunction of annotation node `node`.
    fn conj(&mut self, pool: &mut TermPool, node: usize) -> TermId {
        if let Some(t) = self.conjs[node] {
            return t;
        }
        let n = self.sc.annotations[node].len();
        let mut parts = Vec::with_capacity(n);
        for k in 0..n {
            let i = self.sc.annotations[node][k] as usize;
            parts.push(self.term(pool, i));
        }
        let t = pool.and(parts);
        self.conjs[node] = Some(t);
        t
    }
}

/// Tracks obligation sampling: `Full` checks everything, `Sample` checks
/// a deterministic 1-in-8 stripe rotated by the salt until the
/// [`SAMPLE_BUDGET`] is spent, skipping obligations costed above
/// [`SAMPLE_ATOM_CAP`]; `Structural` counts without checking.
struct Obligations {
    mode: CertifyMode,
    salt: u64,
    total: usize,
    checked: usize,
}

impl Obligations {
    /// Decides whether to re-discharge the next obligation, whose
    /// certificate-side formulas total `cost` constraint atoms.
    fn take(&mut self, cost: usize) -> bool {
        let i = self.total as u64;
        self.total += 1;
        let selected = match self.mode {
            CertifyMode::Full => true,
            CertifyMode::Sample => {
                self.checked < SAMPLE_BUDGET
                    && cost <= SAMPLE_ATOM_CAP
                    && (i.wrapping_add(self.salt)).is_multiple_of(8)
            }
            _ => false,
        };
        if selected {
            self.checked += 1;
        }
        selected
    }
}

fn check_inner(
    pool: &mut TermPool,
    program: &Program,
    cert: &Certificate,
    mode: CertifyMode,
) -> CertifyReport {
    let fp = program_fingerprint(pool, program);
    if cert.fingerprint() != fp {
        return CertifyReport::fail(
            format!(
                "fingerprint mismatch: certificate {:016x}, program {:016x}",
                cert.fingerprint(),
                fp
            ),
            0,
            0,
        );
    }
    let specs = specs_of(program);
    match cert {
        Certificate::Correct { specs: scs, .. } => {
            let want: Vec<CertSpec> = specs.iter().map(|&s| CertSpec::of(s)).collect();
            let have: Vec<CertSpec> = scs.iter().map(|sc| sc.spec).collect();
            if want != have {
                return CertifyReport::fail(
                    format!("specification list mismatch: program {want:?}, certificate {have:?}"),
                    0,
                    0,
                );
            }
            let mut ob = Obligations {
                mode,
                salt: fp,
                total: 0,
                checked: 0,
            };
            for sc in scs {
                if let Err(reason) = check_spec_cert(pool, program, sc, mode, &mut ob) {
                    return CertifyReport::fail(
                        format!("[{}] {reason}", sc.spec.to_text()),
                        ob.total,
                        ob.checked,
                    );
                }
            }
            CertifyReport::pass(ob.total, ob.checked)
        }
        Certificate::Bug { spec, trace, .. } => {
            if !specs.contains(&spec.to_spec()) {
                return CertifyReport::fail(
                    format!(
                        "bug spec {} not a specification of the program",
                        spec.to_text()
                    ),
                    0,
                    0,
                );
            }
            check_bug_cert(pool, program, spec.to_spec(), trace, mode)
        }
    }
}

/// Validates one CORRECT spec certificate. Returns `Err(reason)` on the
/// first failed rule.
fn check_spec_cert(
    pool: &mut TermPool,
    program: &Program,
    sc: &SpecCert,
    mode: CertifyMode,
    ob: &mut Obligations,
) -> Result<(), String> {
    let n_letters = program.num_letters();
    let n_nodes = sc.annotations.len();
    let n_assert = sc.assertions.len();

    // --- Consistency rules (all modes). ---
    if sc.initial as usize >= n_nodes {
        return Err("initial node out of range".to_owned());
    }
    for (i, ann) in sc.annotations.iter().enumerate() {
        if !ann.windows(2).all(|w| w[0] < w[1]) {
            return Err(format!("annotation {i} not sorted/unique"));
        }
        if ann.iter().any(|&a| a as usize >= n_assert) {
            return Err(format!("annotation {i} references unknown assertion"));
        }
    }
    let mut table: HashMap<(u32, u32), u32> = HashMap::new();
    for &(f, l, t) in &sc.edges {
        if f as usize >= n_nodes || t as usize >= n_nodes {
            return Err("edge references unknown node".to_owned());
        }
        if l as usize >= n_letters {
            return Err("edge references unknown letter".to_owned());
        }
        if let Some(&prev) = table.get(&(f, l)) {
            if prev != t {
                return Err(format!(
                    "nondeterministic annotation transition at ({f}, {l})"
                ));
            }
        }
        table.insert((f, l), t);
    }
    let bottoms: HashSet<u32> = sc.bottoms.iter().copied().collect();
    let safes: HashSet<u32> = sc.safes.iter().copied().collect();
    for &b in bottoms.iter().chain(safes.iter()) {
        if b as usize >= n_nodes {
            return Err("bottom/safe references unknown node".to_owned());
        }
    }
    for &b in &sc.bottoms {
        // ⋀∅ = true is never unsatisfiable; an empty bottom annotation is
        // structurally broken, whatever the solver would say.
        if sc.annotations[b as usize].is_empty() {
            return Err(format!("bottom node {b} has an empty annotation"));
        }
    }
    let claims: HashSet<(u32, u32, u32)> = sc.claims.iter().copied().collect();
    for &(a, b, s) in &sc.claims {
        if a as usize >= n_letters || b as usize >= n_letters || s as usize >= n_nodes {
            return Err("claim references unknown letter/node".to_owned());
        }
        if program.thread_of(LetterId(a)) == program.thread_of(LetterId(b)) {
            return Err("claim pairs same-thread letters".to_owned());
        }
    }
    let ucommute: HashSet<(u32, u32)> = sc.ucommute.iter().copied().collect();
    for &(a, b) in &sc.ucommute {
        if a >= b || b as usize >= n_letters {
            return Err("malformed unconditional commutativity pair".to_owned());
        }
        if program.thread_of(LetterId(a)) == program.thread_of(LetterId(b)) {
            return Err("unconditional pair on same thread".to_owned());
        }
    }

    // --- Lazy import into the pool. ---
    //
    // The structural replay never touches terms and the sample tier
    // re-discharges at most [`SAMPLE_BUDGET`] obligations, so importing
    // every assertion up front would make large certificates expensive to
    // spot-check for no benefit: assertions and annotation conjunctions
    // are interned only when an obligation that uses them is taken. Full
    // mode ends up importing everything, exactly as an eager pass would.
    let mut imports = LazyImports::new(sc);
    // Per-assertion and per-node atom counts: the sample tier's cost
    // proxy for skipping obligations it cannot afford to re-discharge.
    let weights: Vec<usize> = sc.assertions.iter().map(atom_count).collect();
    let node_weights: Vec<usize> = sc
        .annotations
        .iter()
        .map(|ann| ann.iter().map(|&i| weights[i as usize]).sum())
        .collect();

    // --- Structural replay + inclusion (Structural | Full). ---
    if matches!(mode, CertifyMode::Structural | CertifyMode::Full) {
        replay_reduction(
            pool, program, sc, &table, &bottoms, &safes, &claims, &ucommute,
        )?;
    }

    // --- Solver obligations (Full; sampled under Sample). ---
    //
    // Every failed re-discharge consults the governor first: under the
    // sample tier's step budget a trip is sticky, so one exhausted
    // obligation means every later solver call would fail fast too — the
    // spot-check stops there and passes on what it completed. Full mode
    // runs ungoverned, so `tripped` never fires and a failure is final.
    let tripped = |pool: &TermPool, ob: &mut Obligations| {
        let t = pool.governor().is_tripped();
        if t {
            // The exhausted obligation was counted when taken but was
            // not actually re-discharged.
            ob.checked -= 1;
        }
        t
    };
    let spec = sc.spec.to_spec();
    for &i in &sc.annotations[sc.initial as usize] {
        if ob.take(weights[i as usize]) {
            let init = pool.and([program.init_formula(), program.pre()]);
            let assertion = imports.term(pool, i as usize);
            if !entails(pool, init, assertion) {
                if tripped(pool, ob) {
                    return Ok(());
                }
                return Err(format!(
                    "initial annotation assertion {i} not entailed by init∧pre"
                ));
            }
        }
    }
    let mut hoare = ProofAutomaton::new();
    for &(f, l, t) in &sc.edges {
        for &i in &sc.annotations[t as usize] {
            if ob.take(node_weights[f as usize] + weights[i as usize]) {
                let pre = imports.conj(pool, f as usize);
                let post = imports.term(pool, i as usize);
                if !hoare.hoare_triple_valid(pool, program, pre, LetterId(l), post) {
                    if tripped(pool, ob) {
                        return Ok(());
                    }
                    return Err(format!(
                        "Hoare obligation failed: {{node {f}}} letter {l} {{assertion {i}}}"
                    ));
                }
            }
        }
    }
    for &b in &sc.bottoms {
        if ob.take(node_weights[b as usize]) {
            let conj = imports.conj(pool, b as usize);
            if !smt_check(pool, &[conj]).is_unsat() {
                if tripped(pool, ob) {
                    return Ok(());
                }
                return Err(format!("bottom node {b} is satisfiable"));
            }
        }
    }
    if spec == Spec::PrePost {
        for &s in &sc.safes {
            if ob.take(node_weights[s as usize]) {
                let conj = imports.conj(pool, s as usize);
                if !entails(pool, conj, program.post()) {
                    if tripped(pool, ob) {
                        return Ok(());
                    }
                    return Err(format!("safe node {s} does not entail the postcondition"));
                }
            }
        }
    } else if !sc.safes.is_empty() {
        return Err("safe nodes recorded for an error specification".to_owned());
    }
    let mut oracle = CommutativityOracle::new(CommutativityLevel::Semantic);
    for &(a, b, s) in &sc.claims {
        if ob.take(node_weights[s as usize]) {
            let conj = imports.conj(pool, s as usize);
            if !oracle.commute_under(pool, program, conj, LetterId(a), LetterId(b)) {
                if tripped(pool, ob) {
                    return Ok(());
                }
                return Err(format!(
                    "commutativity claim ({a}, {b}) fails under node {s}"
                ));
            }
        }
    }
    for &(a, b) in &sc.ucommute {
        // Unconditional claims involve only the two letters' transition
        // formulas, which live program-side: no certificate-side cost.
        if ob.take(0) && !oracle.commute(pool, program, LetterId(a), LetterId(b)) {
            if tripped(pool, ob) {
                return Ok(());
            }
            return Err(format!(
                "unconditional commutativity claim ({a}, {b}) fails"
            ));
        }
    }
    Ok(())
}

/// Replays the reduction DFS from the certificate alone: membranes are
/// re-derived from the claimed commutativity table, sleep sets from the
/// claims table, annotation transitions from the edge table. Any state
/// the replay demands that the certificate does not justify is a reject.
/// The replayed reduction is then re-checked as a language inclusion
/// against the annotation automaton via `crates/automata`.
#[allow(clippy::too_many_arguments)]
fn replay_reduction(
    pool: &TermPool,
    program: &Program,
    sc: &SpecCert,
    table: &HashMap<(u32, u32), u32>,
    bottoms: &HashSet<u32>,
    safes: &HashSet<u32>,
    claims: &HashSet<(u32, u32, u32)>,
    ucommute: &HashSet<(u32, u32)>,
) -> Result<(), String> {
    let _ = pool;
    let spec = sc.spec.to_spec();
    let membrane_mode = match spec {
        Spec::PrePost => MembraneMode::Terminal,
        Spec::ErrorOf(t) => MembraneMode::ErrorThread(t),
    };
    let order = sc.order.build();
    let n_letters = program.num_letters();
    let commuting = |a: LetterId, b: LetterId| -> bool {
        let (lo, hi) = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
        a != b && ucommute.contains(&(lo, hi))
    };
    let persistent = sc
        .use_persistent
        .then(|| PersistentSets::from_commuting(program, commuting));

    type RKey = (ProductState, u32, BitSet, OrderContext);
    let mut red = DfaBuilder::new();
    let mut ids: HashMap<RKey, StateId> = HashMap::new();
    let mut work: Vec<RKey> = Vec::new();

    let q0 = program.initial_state();
    let start: RKey = (q0, sc.initial, BitSet::new(n_letters), 0);
    ids.insert(start.clone(), red.add_state(true));
    work.push(start);

    while let Some(key) = work.pop() {
        let (q, node, sleep, ctx) = key.clone();
        let from = ids[&key];
        if bottoms.contains(&node) {
            continue; // covered: claimed ⊥, pruned
        }
        if program.is_accepting(&q, spec) {
            match spec {
                Spec::ErrorOf(_) => {
                    return Err(format!("reduction reaches an error state at node {node}"));
                }
                Spec::PrePost => {
                    if !safes.contains(&node) {
                        return Err(format!(
                            "accepting state covered by node {node} not claimed safe"
                        ));
                    }
                }
            }
            continue;
        }
        let enabled = program.enabled(&q);
        let mut explore: Vec<LetterId> = match &persistent {
            Some(ps) => ps.compute(program, &q, order.as_ref(), ctx, membrane_mode),
            None => enabled.clone(),
        };
        if sc.use_sleep {
            explore.retain(|l| !sleep.contains(l.index()));
        }
        explore.sort_by_key(|&l| order.rank(ctx, l, program));
        for a in explore {
            let next_q = program
                .step(&q, a)
                .ok_or_else(|| "membrane letter not enabled".to_owned())?;
            let next_node = *table.get(&(node, a.0)).ok_or_else(|| {
                format!(
                    "missing annotation transition at (node {node}, letter {})",
                    a.0
                )
            })?;
            let next_ctx = order.step(ctx, a, program);
            let next_sleep = if sc.use_sleep {
                let mut s = BitSet::new(n_letters);
                for &b in &enabled {
                    let earlier = sleep.contains(b.index()) || order.less(ctx, b, a, program);
                    let commutes = if sc.proof_sensitive {
                        claims.contains(&(a.0, b.0, node))
                    } else {
                        commuting(a, b)
                    };
                    if earlier && commutes {
                        s.insert(b.index());
                    }
                }
                s
            } else {
                BitSet::new(n_letters)
            };
            let next_key: RKey = (next_q, next_node, next_sleep, next_ctx);
            let to = match ids.get(&next_key) {
                Some(&id) => id,
                None => {
                    let id = red.add_state(true);
                    ids.insert(next_key.clone(), id);
                    work.push(next_key);
                    id
                }
            };
            red.add_transition(from, a, to);
        }
    }

    // Independent structural coverage: every word of the replayed
    // reduction must be a word of the annotation automaton.
    let red_dfa = red.build(
        ids[&(
            program.initial_state(),
            sc.initial,
            BitSet::new(n_letters),
            0,
        )],
    );
    let proof_dfa = annotation_dfa(sc, table);
    if !ops::is_subset_of(&red_dfa, &proof_dfa) {
        return Err("reduction not included in annotation automaton".to_owned());
    }
    Ok(())
}

/// The annotation automaton as a DFA over letters: states are annotation
/// nodes (all accepting — coverage is per-prefix), transitions from the
/// certificate's edge table.
fn annotation_dfa(sc: &SpecCert, table: &HashMap<(u32, u32), u32>) -> Dfa<LetterId> {
    let mut b = DfaBuilder::new();
    let states: Vec<StateId> = (0..sc.annotations.len())
        .map(|_| b.add_state(true))
        .collect();
    for (&(f, l), &t) in table {
        b.add_transition(states[f as usize], LetterId(l), states[t as usize]);
    }
    b.build(states[sc.initial as usize])
}

/// Validates a BUG certificate: the trace must structurally reach an
/// accepting state of the spec, and (Sample/Full) be confirmed feasible —
/// first by concrete replay through `program::interp` over escalating
/// havoc domains, falling back to an SSA feasibility check under the DPLL
/// solver for witnesses outside the concrete domains.
fn check_bug_cert(
    pool: &mut TermPool,
    program: &Program,
    spec: Spec,
    trace: &[u32],
    mode: CertifyMode,
) -> CertifyReport {
    let n_letters = program.num_letters();
    if trace.iter().any(|&l| l as usize >= n_letters) {
        return CertifyReport::fail("trace references unknown letter", 0, 0);
    }
    let letters: Vec<LetterId> = trace.iter().map(|&l| LetterId(l)).collect();
    let Some(end) = program.run(&letters) else {
        return CertifyReport::fail("trace not executable in the product", 0, 0);
    };
    if !program.is_accepting(&end, spec) {
        return CertifyReport::fail("trace does not reach an accepting state", 0, 0);
    }
    if !matches!(mode, CertifyMode::Sample | CertifyMode::Full) {
        return CertifyReport::pass(0, 0);
    }
    // Concrete replay: for an error spec, completing the trace into the
    // error location is the violation itself; for pre/post, the final
    // concrete state must additionally violate the postcondition.
    for domain in [vec![0, 1], vec![-1, 0, 1, 2]] {
        let interp = Interpreter::new(program).with_havoc_domain(domain);
        if concrete_violation(pool, program, &interp, spec, &letters) {
            return CertifyReport::pass(1, 1);
        }
    }
    // The witness may need havoc values outside the concrete domains:
    // fall back to SSA feasibility under the (independent) DPLL solver.
    let mut stats = InterpolationStats::default();
    match analyze_trace(pool, program, &letters, spec, &mut stats) {
        TraceResult::Feasible => CertifyReport::pass(1, 1),
        // Under the sample tier's step budget a governor trip means the
        // re-analysis ran out of budget, not that the trace is bogus: the
        // structural product run above still stands, so pass unchecked.
        _ if pool.governor().is_tripped() => CertifyReport::pass(1, 0),
        TraceResult::Infeasible { .. } => {
            CertifyReport::fail("trace is infeasible under re-analysis", 1, 1)
        }
        TraceResult::Unknown => {
            CertifyReport::fail("trace feasibility could not be confirmed", 1, 1)
        }
    }
}

/// Replays `letters` concretely, keeping the full frontier of reachable
/// valuations, and reports whether some resolution of the nondeterminism
/// demonstrates the violation.
fn concrete_violation(
    pool: &TermPool,
    program: &Program,
    interp: &Interpreter<'_>,
    spec: Spec,
    letters: &[LetterId],
) -> bool {
    let pre = program.pre();
    let mut frontier: Vec<_> = interp
        .initial_states()
        .into_iter()
        .filter(|s| pool.eval(pre, &|v| s.value(v)))
        .collect();
    for &l in letters {
        let mut next = Vec::new();
        for s in &frontier {
            next.extend(interp.step(pool, s, l));
        }
        next.sort();
        next.dedup();
        frontier = next;
        if frontier.is_empty() {
            return false;
        }
    }
    match spec {
        // Reaching the error location concretely is the violation.
        Spec::ErrorOf(_) => true,
        // All threads at exit: some final valuation must violate post.
        Spec::PrePost => {
            let post = program.post();
            frontier.iter().any(|s| !pool.eval(post, &|v| s.value(v)))
        }
    }
}

/// A single-point certificate mutation, used by the store/serve fault
/// injector and the soundness battery. Mutations are deterministic given
/// `salt` and return `false` when inapplicable to the certificate shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertMutation {
    /// Empty out one bottom/safe node's annotation (or drop an assertion
    /// index from the densest node), weakening the proof below validity.
    WeakenAnnotation,
    /// Remove one entry from the annotation transition table (falling back
    /// to un-claiming a bottom node), dropping a discharged obligation.
    DropObligation,
    /// Move an assertion index from one annotation node to another,
    /// leaving totals intact but homes wrong.
    RehomeAssertion,
    /// Drop the final letter of a bug trace.
    TruncateTrace,
    /// Bump a linear atom's constant in one assertion (battery only).
    FlipBound,
    /// Permute two distinct annotation nodes (battery only).
    PermuteAnnotation,
    /// Rebind the certificate to a different program (battery only).
    ForeignFingerprint,
}

impl CertMutation {
    /// Stable name, the inverse of [`CertMutation::parse`].
    pub fn name(self) -> &'static str {
        match self {
            CertMutation::WeakenAnnotation => "weaken-annotation",
            CertMutation::DropObligation => "drop-obligation",
            CertMutation::RehomeAssertion => "rehome-assertion",
            CertMutation::TruncateTrace => "truncate-trace",
            CertMutation::FlipBound => "flip-bound",
            CertMutation::PermuteAnnotation => "permute-annotation",
            CertMutation::ForeignFingerprint => "foreign-fingerprint",
        }
    }

    /// Parses a mutation name.
    pub fn parse(s: &str) -> Result<CertMutation, String> {
        Ok(match s {
            "weaken-annotation" => CertMutation::WeakenAnnotation,
            "drop-obligation" => CertMutation::DropObligation,
            "rehome-assertion" => CertMutation::RehomeAssertion,
            "truncate-trace" => CertMutation::TruncateTrace,
            "flip-bound" => CertMutation::FlipBound,
            "permute-annotation" => CertMutation::PermuteAnnotation,
            "foreign-fingerprint" => CertMutation::ForeignFingerprint,
            other => return Err(format!("unknown certificate mutation `{other}`")),
        })
    }

    /// All mutation kinds the store/serve injector supports.
    pub fn injector_kinds() -> [CertMutation; 4] {
        [
            CertMutation::WeakenAnnotation,
            CertMutation::DropObligation,
            CertMutation::RehomeAssertion,
            CertMutation::TruncateTrace,
        ]
    }

    /// Applies the mutation in place. Returns `false` (leaving the
    /// certificate untouched) when the certificate has no applicable site.
    pub fn apply(self, cert: &mut Certificate, salt: u64) -> bool {
        match (self, cert) {
            (CertMutation::TruncateTrace, Certificate::Bug { trace, .. }) => {
                if trace.is_empty() {
                    return false;
                }
                trace.pop();
                true
            }
            (CertMutation::ForeignFingerprint, c) => {
                match c {
                    Certificate::Correct { fingerprint, .. }
                    | Certificate::Bug { fingerprint, .. } => {
                        *fingerprint ^= 0x9e3779b97f4a7c15;
                    }
                }
                true
            }
            (m, Certificate::Correct { specs, .. }) => {
                if specs.is_empty() {
                    return false;
                }
                let pick = salt as usize % specs.len();
                let sc = &mut specs[pick];
                match m {
                    CertMutation::WeakenAnnotation => weaken_annotation(sc, salt),
                    CertMutation::DropObligation => drop_obligation(sc, salt),
                    CertMutation::RehomeAssertion => rehome_assertion(sc, salt),
                    CertMutation::FlipBound => flip_bound(sc, salt),
                    CertMutation::PermuteAnnotation => permute_annotation(sc),
                    _ => false,
                }
            }
            _ => false,
        }
    }
}

fn weaken_annotation(sc: &mut SpecCert, salt: u64) -> bool {
    // Prefer a node whose annotation is load-bearing for pruning: a bottom
    // (emptying it makes ⋀ = true, never unsatisfiable) or a safe node
    // (true rarely entails a real postcondition). Fall back to thinning
    // the densest annotation.
    if !sc.bottoms.is_empty() {
        let b = sc.bottoms[salt as usize % sc.bottoms.len()] as usize;
        if !sc.annotations[b].is_empty() {
            sc.annotations[b].clear();
            return true;
        }
    }
    if !sc.safes.is_empty() {
        let s = sc.safes[salt as usize % sc.safes.len()] as usize;
        if !sc.annotations[s].is_empty() {
            sc.annotations[s].clear();
            return true;
        }
    }
    let densest = (0..sc.annotations.len()).max_by_key(|&i| sc.annotations[i].len());
    match densest {
        Some(i) if !sc.annotations[i].is_empty() => {
            let k = salt as usize % sc.annotations[i].len();
            sc.annotations[i].remove(k);
            true
        }
        _ => false,
    }
}

fn drop_obligation(sc: &mut SpecCert, salt: u64) -> bool {
    if !sc.edges.is_empty() {
        sc.edges.remove(salt as usize % sc.edges.len());
        return true;
    }
    if !sc.bottoms.is_empty() {
        sc.bottoms.remove(salt as usize % sc.bottoms.len());
        return true;
    }
    false
}

fn rehome_assertion(sc: &mut SpecCert, salt: u64) -> bool {
    // Move one assertion index out of a donor node into a recipient that
    // does not hold it. The donor loses strength where it was needed; the
    // recipient claims strength nobody established.
    let n = sc.annotations.len();
    if n < 2 {
        return false;
    }
    let donor_order: Vec<usize> = {
        let mut idx: Vec<usize> = (0..n).collect();
        // Bottoms first: weakening a bottom is reliably detected.
        idx.sort_by_key(|&i| (!sc.bottoms.contains(&(i as u32)), i));
        idx
    };
    for &d in &donor_order {
        if sc.annotations[d].is_empty() {
            continue;
        }
        let k = salt as usize % sc.annotations[d].len();
        let moved = sc.annotations[d][k];
        for off in 0..n {
            let r = (d + 1 + off) % n;
            if r != d && !sc.annotations[r].contains(&moved) {
                sc.annotations[d].remove(k);
                let pos = sc.annotations[r].partition_point(|&x| x < moved);
                sc.annotations[r].insert(pos, moved);
                return true;
            }
        }
    }
    false
}

/// A bound shift far beyond any slack a real annotation carries, so the
/// strengthened atom is no longer derivable wherever it is re-checked.
const FLIP_SHIFT: i128 = 1 << 40;

fn flip_bound(sc: &mut SpecCert, salt: u64) -> bool {
    if sc.assertions.is_empty() {
        return false;
    }
    // Target an assertion the checker re-discharges an obligation for:
    // the initial node's annotation (checked against the precondition)
    // first, then edge-target annotations (checked as Hoare posts). A
    // small shift on an arbitrary assertion could land inside the proof's
    // slack and leave the certificate valid — which the checker rightly
    // accepts — so the battery's flip must provably break an obligation.
    let mut candidates: Vec<u32> = Vec::new();
    if let Some(init) = sc.annotations.get(sc.initial as usize) {
        candidates.extend(init.iter().copied());
    }
    for &(_, _, to) in &sc.edges {
        if let Some(node) = sc.annotations.get(to as usize) {
            candidates.extend(node.iter().copied());
        }
    }
    candidates.extend(0..sc.assertions.len() as u32);
    candidates.dedup();
    let n = candidates.len();
    for off in 0..n {
        let i = candidates[(salt as usize + off) % n] as usize;
        if i < sc.assertions.len() && flip_first_atom(&mut sc.assertions[i]) {
            return true;
        }
    }
    false
}

fn flip_first_atom(t: &mut ExportedTerm) -> bool {
    match t {
        ExportedTerm::Atom { constant, .. } => {
            *constant += FLIP_SHIFT;
            true
        }
        // Only descend conjunctions: strengthening one disjunct of an
        // `Or` weakens nothing and could leave the certificate valid.
        ExportedTerm::And(parts) => parts.iter_mut().any(flip_first_atom),
        _ => false,
    }
}

fn permute_annotation(sc: &mut SpecCert) -> bool {
    let n = sc.annotations.len();
    for i in 0..n {
        for j in (i + 1)..n {
            if sc.annotations[i] != sc.annotations[j] {
                sc.annotations.swap(i, j);
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cert() -> Certificate {
        Certificate::Correct {
            fingerprint: 0xdead_beef,
            specs: vec![SpecCert {
                spec: CertSpec::ErrorOf(1),
                order: OrderSpec::Random(42),
                use_sleep: true,
                use_persistent: false,
                proof_sensitive: true,
                assertions: vec![
                    ExportedTerm::Atom {
                        coeffs: vec![("x".to_owned(), 1)],
                        constant: -3,
                        rel: smt::linear::Rel::Le0,
                    },
                    ExportedTerm::False,
                ],
                annotations: vec![vec![], vec![0], vec![0, 1]],
                initial: 0,
                edges: vec![(0, 0, 1), (1, 2, 2)],
                bottoms: vec![2],
                safes: vec![],
                claims: vec![(0, 3, 1)],
                ucommute: vec![(0, 3)],
            }],
        }
    }

    #[test]
    fn certificate_text_roundtrip() {
        let cert = sample_cert();
        let text = cert.to_text();
        let back = Certificate::parse(&text).expect("parses");
        assert_eq!(cert, back);

        let bug = Certificate::Bug {
            fingerprint: 7,
            spec: CertSpec::PrePost,
            trace: vec![3, 1, 4, 1, 5],
        };
        assert_eq!(Certificate::parse(&bug.to_text()).unwrap(), bug);

        let empty_trace = Certificate::Bug {
            fingerprint: 7,
            spec: CertSpec::ErrorOf(0),
            trace: vec![],
        };
        assert_eq!(
            Certificate::parse(&empty_trace.to_text()).unwrap(),
            empty_trace
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Certificate::parse("").is_err());
        assert!(Certificate::parse("cert-format 2\nverdict bug 1").is_err());
        assert!(Certificate::parse("cert-format 1\nverdict maybe 1\nend-cert").is_err());
        let mut lines = sample_cert().to_lines();
        lines.pop(); // drop end-cert
        assert!(Certificate::from_lines(lines.iter().map(|s| s.as_str())).is_err());
    }

    #[test]
    fn mutations_change_the_certificate() {
        for m in [
            CertMutation::WeakenAnnotation,
            CertMutation::DropObligation,
            CertMutation::RehomeAssertion,
            CertMutation::FlipBound,
            CertMutation::PermuteAnnotation,
            CertMutation::ForeignFingerprint,
        ] {
            let original = sample_cert();
            let mut mutated = original.clone();
            assert!(m.apply(&mut mutated, 1), "{} applies", m.name());
            assert_ne!(
                original,
                mutated,
                "{} must change the certificate",
                m.name()
            );
        }
        let bug = Certificate::Bug {
            fingerprint: 7,
            spec: CertSpec::PrePost,
            trace: vec![0, 1],
        };
        let mut mutated = bug.clone();
        assert!(CertMutation::TruncateTrace.apply(&mut mutated, 0));
        assert_ne!(bug, mutated);
        // Inapplicable: truncating a correct certificate.
        let mut c = sample_cert();
        assert!(!CertMutation::TruncateTrace.apply(&mut c, 0));
        assert_eq!(c, sample_cert());
    }

    #[test]
    fn mutation_names_roundtrip() {
        for m in [
            CertMutation::WeakenAnnotation,
            CertMutation::DropObligation,
            CertMutation::RehomeAssertion,
            CertMutation::TruncateTrace,
            CertMutation::FlipBound,
            CertMutation::PermuteAnnotation,
            CertMutation::ForeignFingerprint,
        ] {
            assert_eq!(CertMutation::parse(m.name()).unwrap(), m);
        }
        assert!(CertMutation::parse("no-such").is_err());
    }

    #[test]
    fn certify_mode_names_roundtrip() {
        for m in [
            CertifyMode::Off,
            CertifyMode::Structural,
            CertifyMode::Sample,
            CertifyMode::Full,
        ] {
            assert_eq!(CertifyMode::parse(m.name()).unwrap(), m);
        }
        assert!(CertifyMode::parse("everything").is_err());
    }
}
