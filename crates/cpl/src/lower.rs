//! Lowering CPL to the [`program::Program`] model.
//!
//! * Every syntactic statement occurrence becomes one **letter** of the
//!   program alphabet (so Σi are disjoint by construction).
//! * `if`/`while` conditions become `assume` edges (`*` becomes a pair of
//!   unconstrained edges).
//! * `assert e` becomes an `assume e` edge to the next location plus an
//!   `assume !e` edge to the thread's error location.
//! * `atomic { … }` is flattened into its set of internal paths: one letter
//!   for the normal paths and, if the block contains asserts, a second
//!   letter collecting the failing paths (leading to the error location).
//! * Booleans are `{0, 1}` integers: `b` reads as `b ≥ 1`; assignments
//!   from complex boolean expressions lower to two guarded paths.
//! * Thread templates are instantiated per `spawn`, with locals renamed
//!   apart (`tmpl$i.local`).
//!
//! Control-flow merge points (after `if`, around `while`) are handled with
//! a union-find over provisional locations, so the generated CFGs contain
//! no ε-edges and no "goto" letters that would pollute the alphabet.

use crate::ast::*;
use crate::Error;
use automata::bitset::BitSet;
use automata::dfa::{DfaBuilder, StateId};
use program::concurrent::{Program, ProgramBuilder};
use program::stmt::{SimpleStmt, Statement};
use program::thread::{Thread, ThreadId};
use smt::linear::{LinExpr, VarId};
use smt::term::{TermId, TermPool};
use std::collections::HashMap;

/// Maximum number of internal paths of a single `atomic` block.
const MAX_ATOMIC_PATHS: usize = 64;

/// Maximum number of thread instances across all `spawn` declarations.
/// The verifier explores interleavings of all threads, so an adversarial
/// `spawn t * 4000000000;` must be rejected up front instead of looping
/// until memory runs out.
const MAX_THREADS: u32 = 256;

/// An ill-typed construct reaching lowering. The typechecker rejects these
/// first, but lowering re-checks instead of panicking so that a checker
/// gap on adversarial input degrades to a diagnostic, never an abort.
fn ill_typed(message: impl Into<String>) -> Error {
    Error {
        line: 0,
        col: 0,
        message: message.into(),
    }
}

/// Lowers a typechecked AST into a program.
///
/// # Errors
///
/// Returns an error if an `atomic` block explodes past
/// `MAX_ATOMIC_PATHS` (64) internal paths, if more than [`MAX_THREADS`]
/// instances are spawned, or if an ill-typed construct slipped past the
/// typechecker (defense in depth — lowering never panics on input).
pub fn lower(ast: &Ast, pool: &mut TermPool) -> Result<Program, Error> {
    let mut b = Program::builder(&ast.name);
    let mut genv: HashMap<String, (VarId, Type)> = HashMap::new();
    for g in &ast.globals {
        let v = pool.var(&g.name);
        declare(&mut b, pool, v, g);
        genv.insert(g.name.clone(), (v, g.ty));
    }
    let pre = match &ast.requires {
        Some(e) => bool_term(pool, e, &genv)?,
        None => TermPool::TRUE,
    };
    let post = match &ast.ensures {
        Some(e) => bool_term(pool, e, &genv)?,
        None => TermPool::TRUE,
    };
    b.set_pre_post(pre, post);

    let total: u64 = ast.spawns.iter().map(|s| u64::from(s.count)).sum();
    if total > u64::from(MAX_THREADS) {
        return Err(ill_typed(format!(
            "program spawns {total} threads, more than the {MAX_THREADS} supported"
        )));
    }
    let mut tid = 0u32;
    for spawn in &ast.spawns {
        let template = ast
            .template(&spawn.template)
            .ok_or_else(|| ill_typed(format!("spawn of undeclared thread `{}`", spawn.template)))?;
        for _ in 0..spawn.count {
            let mut env = genv.clone();
            for l in &template.locals {
                let name = format!("{}${}.{}", template.name, tid, l.name);
                let v = pool.var(&name);
                declare(&mut b, pool, v, l);
                env.insert(l.name.clone(), (v, l.ty));
            }
            let instance = format!("{}${}", template.name, tid);
            let thread = lower_thread(&mut b, pool, ThreadId(tid), &instance, template, &env)?;
            b.add_thread(thread);
            tid += 1;
        }
    }
    Ok(b.build(pool))
}

/// Registers a variable and its initial condition.
fn declare(b: &mut ProgramBuilder, pool: &mut TermPool, v: VarId, decl: &VarDecl) {
    match decl.init {
        Init::Const(k) => b.add_global(v, k),
        Init::ConstBool(value) => b.add_global(v, i128::from(value)),
        Init::Nondet => {
            b.add_global_nondet(v);
            if decl.ty == Type::Bool {
                let lo = pool.ge_const(v, 0);
                let hi = pool.le_const(v, 1);
                let range = pool.and([lo, hi]);
                b.add_init_constraint(range);
            }
        }
    }
}

type Env = HashMap<String, (VarId, Type)>;

/// Resolves a variable, erroring (not panicking) on undeclared names.
fn lookup(env: &Env, name: &str) -> Result<(VarId, Type), Error> {
    env.get(name)
        .copied()
        .ok_or_else(|| ill_typed(format!("undeclared variable `{name}`")))
}

/// Lowers an integer expression (typecheck guarantees linearity).
fn int_expr(e: &Expr, env: &Env) -> Result<LinExpr, Error> {
    match e {
        Expr::Int(n) => Ok(LinExpr::constant(*n)),
        Expr::Var(name) => Ok(LinExpr::var(lookup(env, name)?.0)),
        Expr::Neg(inner) => Ok(int_expr(inner, env)?.scale(-1)),
        Expr::Bin(BinOp::Add, a, b) => Ok(int_expr(a, env)?.add(&int_expr(b, env)?)),
        Expr::Bin(BinOp::Sub, a, b) => Ok(int_expr(a, env)?.sub(&int_expr(b, env)?)),
        Expr::Bin(BinOp::Mul, a, b) => match a.const_int() {
            Some(k) => Ok(int_expr(b, env)?.scale(k)),
            None => match b.const_int() {
                Some(k) => Ok(int_expr(a, env)?.scale(k)),
                None => Err(ill_typed(format!("non-linear multiplication: {e}"))),
            },
        },
        other => Err(ill_typed(format!("not an integer expression: {other}"))),
    }
}

/// Lowers a boolean expression to a formula (`*` becomes `true`).
fn bool_term(pool: &mut TermPool, e: &Expr, env: &Env) -> Result<TermId, Error> {
    match e {
        Expr::Bool(true) | Expr::Nondet => Ok(TermPool::TRUE),
        Expr::Bool(false) => Ok(TermPool::FALSE),
        Expr::Var(name) => {
            // Boolean variable: b ⇔ b ≥ 1 (booleans are {0,1} integers).
            Ok(pool.ge_const(lookup(env, name)?.0, 1))
        }
        Expr::Not(inner) => {
            let t = bool_term(pool, inner, env)?;
            Ok(pool.not(t))
        }
        Expr::Bin(op, a, b) => match op {
            BinOp::And => {
                let (ta, tb) = (bool_term(pool, a, env)?, bool_term(pool, b, env)?);
                Ok(pool.and([ta, tb]))
            }
            BinOp::Or => {
                let (ta, tb) = (bool_term(pool, a, env)?, bool_term(pool, b, env)?);
                Ok(pool.or([ta, tb]))
            }
            BinOp::Eq => Ok(pool.eq(&int_expr(a, env)?, &int_expr(b, env)?)),
            BinOp::Ne => Ok(pool.ne(&int_expr(a, env)?, &int_expr(b, env)?)),
            BinOp::Lt => Ok(pool.lt(&int_expr(a, env)?, &int_expr(b, env)?)),
            BinOp::Le => Ok(pool.le(&int_expr(a, env)?, &int_expr(b, env)?)),
            BinOp::Gt => Ok(pool.gt(&int_expr(a, env)?, &int_expr(b, env)?)),
            BinOp::Ge => Ok(pool.ge(&int_expr(a, env)?, &int_expr(b, env)?)),
            BinOp::Add | BinOp::Sub | BinOp::Mul => {
                Err(ill_typed(format!("not a boolean expression: {e}")))
            }
        },
        other => Err(ill_typed(format!("not a boolean expression: {other}"))),
    }
}

/// The alternative simple-step sequences of one non-control statement
/// (bool assignments and bool havoc branch).
fn simple_steps(
    pool: &mut TermPool,
    stmt: &Stmt,
    env: &Env,
) -> Result<Vec<Vec<SimpleStmt>>, Error> {
    match stmt {
        Stmt::Skip => Ok(vec![vec![]]),
        Stmt::Assume(e) => {
            let g = bool_term(pool, e, env)?;
            Ok(vec![vec![SimpleStmt::Assume(g)]])
        }
        Stmt::Havoc(x) => {
            let (v, ty) = lookup(env, x)?;
            Ok(match ty {
                Type::Int => vec![vec![SimpleStmt::Havoc(v)]],
                Type::Bool => vec![
                    vec![SimpleStmt::Assign(v, LinExpr::constant(0))],
                    vec![SimpleStmt::Assign(v, LinExpr::constant(1))],
                ],
            })
        }
        Stmt::Assign(x, e) => {
            let (v, ty) = lookup(env, x)?;
            match ty {
                Type::Int => Ok(vec![vec![SimpleStmt::Assign(v, int_expr(e, env)?)]]),
                Type::Bool => match e {
                    Expr::Bool(value) => Ok(vec![vec![SimpleStmt::Assign(
                        v,
                        LinExpr::constant(i128::from(*value)),
                    )]]),
                    Expr::Nondet => Ok(vec![
                        vec![SimpleStmt::Assign(v, LinExpr::constant(0))],
                        vec![SimpleStmt::Assign(v, LinExpr::constant(1))],
                    ]),
                    _ => {
                        let g = bool_term(pool, e, env)?;
                        let ng = pool.not(g);
                        Ok(vec![
                            vec![
                                SimpleStmt::Assume(g),
                                SimpleStmt::Assign(v, LinExpr::constant(1)),
                            ],
                            vec![
                                SimpleStmt::Assume(ng),
                                SimpleStmt::Assign(v, LinExpr::constant(0)),
                            ],
                        ])
                    }
                },
            }
        }
        other => Err(ill_typed(format!(
            "not a simple statement: {}",
            other.label()
        ))),
    }
}

/// Internal paths of an `atomic` block: `(normal, failing)`.
#[allow(clippy::type_complexity)]
fn atomic_paths(
    pool: &mut TermPool,
    stmts: &[Stmt],
    env: &Env,
) -> Result<(Vec<Vec<SimpleStmt>>, Vec<Vec<SimpleStmt>>), Error> {
    let mut normal: Vec<Vec<SimpleStmt>> = vec![vec![]];
    let mut failing: Vec<Vec<SimpleStmt>> = Vec::new();
    for stmt in stmts {
        match stmt {
            Stmt::Skip | Stmt::Assume(_) | Stmt::Havoc(_) | Stmt::Assign(_, _) => {
                let alts = simple_steps(pool, stmt, env)?;
                normal = cross(&normal, &alts);
            }
            Stmt::Assert(e) => {
                let g = bool_term(pool, e, env)?;
                let ng = pool.not(g);
                for p in &normal {
                    let mut f = p.clone();
                    f.push(SimpleStmt::Assume(ng));
                    failing.push(f);
                }
                for p in &mut normal {
                    p.push(SimpleStmt::Assume(g));
                }
            }
            Stmt::If(c, then_branch, else_branch) => {
                let (g, ng) = if matches!(c, Expr::Nondet) {
                    (TermPool::TRUE, TermPool::TRUE)
                } else {
                    let g = bool_term(pool, c, env)?;
                    let ng = pool.not(g);
                    (g, ng)
                };
                let (tn, tf) = atomic_paths(pool, then_branch, env)?;
                let (en, ef) = atomic_paths(pool, else_branch, env)?;
                let then_prefix = cross(&normal, &[vec![SimpleStmt::Assume(g)]]);
                let else_prefix = cross(&normal, &[vec![SimpleStmt::Assume(ng)]]);
                failing.extend(cross(&then_prefix, &tf));
                failing.extend(cross(&else_prefix, &ef));
                let mut merged = cross(&then_prefix, &tn);
                merged.extend(cross(&else_prefix, &en));
                normal = merged;
            }
            Stmt::Atomic(inner) => {
                let (inner_n, inner_f) = atomic_paths(pool, inner, env)?;
                failing.extend(cross(&normal, &inner_f));
                normal = cross(&normal, &inner_n);
            }
            Stmt::While(_, _) => {
                return Err(ill_typed("while inside atomic block"));
            }
        }
        if normal.len() + failing.len() > MAX_ATOMIC_PATHS {
            return Err(Error {
                line: 0,
                col: 0,
                message: format!(
                    "atomic block expands to more than {MAX_ATOMIC_PATHS} internal paths"
                ),
            });
        }
    }
    Ok((normal, failing))
}

fn cross(prefixes: &[Vec<SimpleStmt>], suffixes: &[Vec<SimpleStmt>]) -> Vec<Vec<SimpleStmt>> {
    let mut out = Vec::with_capacity(prefixes.len() * suffixes.len());
    for p in prefixes {
        for s in suffixes {
            let mut path = p.clone();
            path.extend(s.iter().cloned());
            out.push(path);
        }
    }
    out
}

/// Provisional CFG under construction, with a union-find over locations so
/// that branch exits can be merged without ε-edges.
struct CfgSketch {
    parent: Vec<usize>,
    edges: Vec<(usize, program::concurrent::LetterId, usize)>,
    error: Option<usize>,
}

impl CfgSketch {
    fn new() -> CfgSketch {
        CfgSketch {
            parent: Vec::new(),
            edges: Vec::new(),
            error: None,
        }
    }

    fn fresh(&mut self) -> usize {
        self.parent.push(self.parent.len());
        self.parent.len() - 1
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn merge(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra;
        }
    }

    fn edge(&mut self, from: usize, letter: program::concurrent::LetterId, to: usize) {
        self.edges.push((from, letter, to));
    }

    fn error_loc(&mut self) -> usize {
        match self.error {
            Some(e) => e,
            None => {
                let e = self.fresh();
                self.error = Some(e);
                e
            }
        }
    }
}

fn lower_thread(
    b: &mut ProgramBuilder,
    pool: &mut TermPool,
    tid: ThreadId,
    instance: &str,
    template: &ThreadDecl,
    env: &Env,
) -> Result<Thread, Error> {
    let mut sketch = CfgSketch::new();
    let entry = sketch.fresh();
    // Initialize nondeterministic-looking locals? Locals are registered as
    // program globals with their own initial condition, so nothing to do.
    let exit = lower_block(b, pool, tid, &mut sketch, &template.body, entry, env)?;

    // Canonicalize locations and build the DFA.
    let mut ids: HashMap<usize, StateId> = HashMap::new();
    let mut builder = DfaBuilder::new();
    let mut canon = |sketch: &mut CfgSketch, loc: usize, builder: &mut DfaBuilder<_>| {
        let root = sketch.find(loc);
        *ids.entry(root).or_insert_with(|| builder.add_state(false))
    };
    let entry_id = canon(&mut sketch, entry, &mut builder);
    let exit_id = canon(&mut sketch, exit, &mut builder);
    builder.set_accepting(exit_id, true);
    let edges = sketch.edges.clone();
    for (from, letter, to) in edges {
        let f = canon(&mut sketch, from, &mut builder);
        let t = canon(&mut sketch, to, &mut builder);
        builder.add_transition(f, letter, t);
    }
    let mut errors = BitSet::new(builder.num_states().max(1));
    if let Some(e) = sketch.error {
        let e_id = canon(&mut sketch, e, &mut builder);
        // The bitset may need to grow if the error state was just created.
        let mut grown = BitSet::new(builder.num_states());
        for i in errors.iter() {
            grown.insert(i);
        }
        errors = grown;
        errors.insert(e_id.index());
    }
    // Ensure capacity matches the final state count.
    if errors.capacity() < builder.num_states() {
        let mut grown = BitSet::new(builder.num_states());
        for i in errors.iter() {
            grown.insert(i);
        }
        errors = grown;
    }
    Ok(Thread::new(instance, builder.build(entry_id), errors))
}

/// Lowers a statement sequence from `entry`, returning the exit location.
fn lower_block(
    b: &mut ProgramBuilder,
    pool: &mut TermPool,
    tid: ThreadId,
    sketch: &mut CfgSketch,
    stmts: &[Stmt],
    entry: usize,
    env: &Env,
) -> Result<usize, Error> {
    let mut current = entry;
    for stmt in stmts {
        current = lower_stmt(b, pool, tid, sketch, stmt, current, env)?;
    }
    Ok(current)
}

fn lower_stmt(
    b: &mut ProgramBuilder,
    pool: &mut TermPool,
    tid: ThreadId,
    sketch: &mut CfgSketch,
    stmt: &Stmt,
    entry: usize,
    env: &Env,
) -> Result<usize, Error> {
    match stmt {
        Stmt::Skip => Ok(entry),
        Stmt::Assume(_) | Stmt::Havoc(_) | Stmt::Assign(_, _) => {
            let paths = simple_steps(pool, stmt, env)?;
            let letter = b.add_statement(Statement::atomic(tid, &stmt.label(), paths, pool));
            let next = sketch.fresh();
            sketch.edge(entry, letter, next);
            Ok(next)
        }
        Stmt::Assert(e) => {
            let g = bool_term(pool, e, env)?;
            let ng = pool.not(g);
            let ok = b.add_statement(Statement::simple(
                tid,
                &format!("[ok] {}", stmt.label()),
                SimpleStmt::Assume(g),
                pool,
            ));
            let bad = b.add_statement(Statement::simple(
                tid,
                &format!("[fail] {}", stmt.label()),
                SimpleStmt::Assume(ng),
                pool,
            ));
            let next = sketch.fresh();
            let err = sketch.error_loc();
            sketch.edge(entry, ok, next);
            sketch.edge(entry, bad, err);
            Ok(next)
        }
        Stmt::If(c, then_branch, else_branch) => {
            let (g, ng) = if matches!(c, Expr::Nondet) {
                (TermPool::TRUE, TermPool::TRUE)
            } else {
                let g = bool_term(pool, c, env)?;
                let ng = pool.not(g);
                (g, ng)
            };
            let then_letter = b.add_statement(Statement::simple(
                tid,
                &format!("[then] assume {c}"),
                SimpleStmt::Assume(g),
                pool,
            ));
            let else_letter = b.add_statement(Statement::simple(
                tid,
                &format!("[else] assume !({c})"),
                SimpleStmt::Assume(ng),
                pool,
            ));
            let t0 = sketch.fresh();
            let e0 = sketch.fresh();
            sketch.edge(entry, then_letter, t0);
            sketch.edge(entry, else_letter, e0);
            let t_exit = lower_block(b, pool, tid, sketch, then_branch, t0, env)?;
            let e_exit = lower_block(b, pool, tid, sketch, else_branch, e0, env)?;
            sketch.merge(t_exit, e_exit);
            Ok(t_exit)
        }
        Stmt::While(c, body) => {
            let (g, ng) = if matches!(c, Expr::Nondet) {
                (TermPool::TRUE, TermPool::TRUE)
            } else {
                let g = bool_term(pool, c, env)?;
                let ng = pool.not(g);
                (g, ng)
            };
            let enter = b.add_statement(Statement::simple(
                tid,
                &format!("[loop] assume {c}"),
                SimpleStmt::Assume(g),
                pool,
            ));
            let leave = b.add_statement(Statement::simple(
                tid,
                &format!("[exit] assume !({c})"),
                SimpleStmt::Assume(ng),
                pool,
            ));
            let body0 = sketch.fresh();
            let after = sketch.fresh();
            sketch.edge(entry, enter, body0);
            sketch.edge(entry, leave, after);
            let body_exit = lower_block(b, pool, tid, sketch, body, body0, env)?;
            sketch.merge(body_exit, entry);
            Ok(after)
        }
        Stmt::Atomic(body) => {
            let (normal, failing) = atomic_paths(pool, body, env)?;
            let next = sketch.fresh();
            debug_assert!(!normal.is_empty());
            let letter = b.add_statement(Statement::atomic(tid, &stmt.label(), normal, pool));
            sketch.edge(entry, letter, next);
            if !failing.is_empty() {
                let err = sketch.error_loc();
                let fail_letter = b.add_statement(Statement::atomic(
                    tid,
                    &format!("[fail] {}", stmt.label()),
                    failing,
                    pool,
                ));
                sketch.edge(entry, fail_letter, err);
            }
            Ok(next)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use program::concurrent::Spec;
    use program::interp::{Interpreter, SearchResult};

    #[test]
    fn straight_line_thread() {
        let mut pool = TermPool::new();
        let p = compile(
            "var x: int = 0; thread t { x := x + 1; x := x + 2; } spawn t;",
            &mut pool,
        )
        .unwrap();
        assert_eq!(p.num_threads(), 1);
        assert_eq!(p.thread(ThreadId(0)).size(), 3);
        assert_eq!(p.num_letters(), 2);
        // Interpreter reaches x = 3.
        let interp = Interpreter::new(&p);
        match interp.search(&pool, Spec::PrePost, 100) {
            SearchResult::ErrorReachable(trace) => assert_eq!(trace.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn assert_creates_error_location() {
        let mut pool = TermPool::new();
        let p = compile(
            "var x: int = 0; thread t { assert x == 0; } spawn t;",
            &mut pool,
        )
        .unwrap();
        let t = p.thread(ThreadId(0));
        assert!(t.has_error_locations());
        assert_eq!(p.asserting_threads(), vec![ThreadId(0)]);
    }

    #[test]
    fn if_branches_merge() {
        let mut pool = TermPool::new();
        let p = compile(
            "var x: int = 0; var y: int = 0;
             thread t { if (x == 0) { y := 1; } else { y := 2; } y := y + 1; } spawn t;",
            &mut pool,
        )
        .unwrap();
        // Locations: entry, then0, else0, join(=after assigns), after-incr.
        // The join must be shared: total 5 states, 5 letters.
        assert_eq!(p.thread(ThreadId(0)).size(), 5);
        assert_eq!(p.num_letters(), 5);
    }

    #[test]
    fn while_loops_back() {
        let mut pool = TermPool::new();
        let p = compile(
            "var x: int = 0; thread t { while (x < 3) { x := x + 1; } } spawn t;",
            &mut pool,
        )
        .unwrap();
        let t = p.thread(ThreadId(0));
        // entry (loop head), body0, after. Body exit merges with entry.
        assert_eq!(t.size(), 3);
        // Interpreter: x counts to 3 then exits.
        let interp = Interpreter::new(&p);
        match interp.search(&pool, Spec::PrePost, 1000) {
            SearchResult::ErrorReachable(trace) => {
                assert_eq!(trace.len(), 3 * 2 + 1) // 3×(enter, incr) + exit
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn atomic_with_if_is_one_letter() {
        let mut pool = TermPool::new();
        let p = compile(
            "var p: int = 1; var ev: bool = false;
             thread t { atomic { p := p - 1; if (p == 0) { ev := true; } } } spawn t;",
            &mut pool,
        )
        .unwrap();
        assert_eq!(p.num_letters(), 1);
        let stmt = p.statement(program::concurrent::LetterId(0));
        assert_eq!(stmt.paths().len(), 2);
    }

    #[test]
    fn atomic_with_assert_makes_two_letters() {
        let mut pool = TermPool::new();
        let p = compile(
            "var x: int = 0; thread t { atomic { x := x + 1; assert x == 1; } } spawn t;",
            &mut pool,
        )
        .unwrap();
        assert_eq!(p.num_letters(), 2, "normal + failing letter");
        assert!(p.thread(ThreadId(0)).has_error_locations());
    }

    #[test]
    fn spawn_instantiates_locals_apart() {
        let mut pool = TermPool::new();
        let p = compile(
            "var g: int = 0; thread t { local c: int = 5; c := c + 1; g := g + c; } spawn t * 2;",
            &mut pool,
        )
        .unwrap();
        assert_eq!(p.num_threads(), 2);
        // 2 locals + 1 global.
        assert_eq!(p.globals().len(), 3);
        // The two instances' first statements write different variables.
        let s0 = p.statement(program::concurrent::LetterId(0));
        let s1 = p.statement(program::concurrent::LetterId(2));
        assert_ne!(s0.writes(), s1.writes());
    }

    #[test]
    fn nondet_bool_assignment() {
        let mut pool = TermPool::new();
        let p = compile(
            "var f: bool; thread t { f := *; assert f || !f; } spawn t;",
            &mut pool,
        )
        .unwrap();
        let stmt = p.statement(program::concurrent::LetterId(0));
        assert_eq!(stmt.paths().len(), 2);
        let _ = p;
    }

    #[test]
    fn bool_assignment_from_comparison() {
        let mut pool = TermPool::new();
        let p = compile(
            "var x: int = 3; var f: bool; thread t { f := x > 2; } spawn t;",
            &mut pool,
        )
        .unwrap();
        let interp = Interpreter::new(&p);
        let init = &interp.initial_states()[0];
        let succs = interp.step(&pool, init, program::concurrent::LetterId(0));
        assert_eq!(succs.len(), 1);
        let f = pool.var("f");
        assert_eq!(succs[0].value(f), 1);
    }

    #[test]
    fn nondet_initializer_is_unconstrained() {
        let mut pool = TermPool::new();
        let p = compile("var x: int = *; thread t { skip; } spawn t;", &mut pool).unwrap();
        assert!(p.init_values().get(&pool.var("x")).is_none());
    }
}
