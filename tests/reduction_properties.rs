//! Property-based tests of the central soundness/minimality theorems on
//! *randomly generated* concurrent programs (Thm 5.3 / Thm 6.6).
//!
//! Programs are random DAG-threads over a mix of shared and private
//! variables; commutativity is decided semantically. For every preference
//! order, the combined reduction must (1) be a subset of the product
//! language, (2) contain a representative of every Mazurkiewicz class of
//! bounded length, and (3) contain no two equivalent words.

use proptest::prelude::*;
use seqver::automata::bitset::BitSet;
use seqver::automata::dfa::DfaBuilder;
use seqver::automata::explore::accepted_words;
use seqver::program::commutativity::{CommutativityLevel, CommutativityOracle};
use seqver::program::concurrent::{LetterId, Program, Spec};
use seqver::program::stmt::{SimpleStmt, Statement};
use seqver::program::thread::{Thread, ThreadId};
use seqver::reduction::mazurkiewicz::{check_reduction_minimal, equivalent};
use seqver::reduction::order::{LockstepOrder, PreferenceOrder, RandomOrder, SeqOrder};
use seqver::reduction::reduce::{reduction_automaton, ReductionConfig};
use seqver::smt::linear::LinExpr;
use seqver::smt::TermPool;

/// A random simple statement description: which variable (0..3, where 0–1
/// are shared between threads) and what operation.
#[derive(Clone, Debug)]
struct StmtDesc {
    var: usize,
    op: u8, // 0: := k, 1: += 1, 2: havoc
}

fn stmt_desc() -> impl Strategy<Value = StmtDesc> {
    (0usize..4, 0u8..3).prop_map(|(var, op)| StmtDesc { var, op })
}

/// 2–3 threads with 1–3 statements each.
fn program_desc() -> impl Strategy<Value = Vec<Vec<StmtDesc>>> {
    proptest::collection::vec(proptest::collection::vec(stmt_desc(), 1..=3), 2..=3)
}

fn build_program(pool: &mut TermPool, desc: &[Vec<StmtDesc>]) -> Program {
    let mut b = Program::builder("random");
    // Variables 0–1 shared; per thread t, vars 2–3 are private copies.
    let shared: Vec<_> = (0..2).map(|i| pool.var(&format!("s{i}"))).collect();
    for &v in &shared {
        b.add_global(v, 0);
    }
    let mut letters_per_thread = Vec::new();
    for (t, stmts) in desc.iter().enumerate() {
        let private: Vec<_> = (0..2).map(|i| pool.var(&format!("p{t}_{i}"))).collect();
        for &v in &private {
            b.add_global(v, 0);
        }
        let mut letters = Vec::new();
        for (s, d) in stmts.iter().enumerate() {
            let var = if d.var < 2 {
                shared[d.var]
            } else {
                private[d.var - 2]
            };
            let stmt = match d.op {
                0 => SimpleStmt::Assign(var, LinExpr::constant(s as i128)),
                1 => SimpleStmt::Assign(var, LinExpr::var(var).add(&LinExpr::constant(1))),
                _ => SimpleStmt::Havoc(var),
            };
            letters.push(b.add_statement(Statement::simple(
                ThreadId(t as u32),
                &format!("t{t}s{s}"),
                stmt,
                pool,
            )));
        }
        letters_per_thread.push(letters);
    }
    for letters in &letters_per_thread {
        let mut cfg = DfaBuilder::new();
        let mut prev = cfg.add_state(letters.is_empty());
        let entry = prev;
        for (i, &l) in letters.iter().enumerate() {
            let next = cfg.add_state(i + 1 == letters.len());
            cfg.add_transition(prev, l, next);
            prev = next;
        }
        b.add_thread(Thread::new(
            "t",
            cfg.build(entry),
            BitSet::new(letters.len() + 1),
        ));
    }
    b.build(pool)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn combined_reduction_sound_and_minimal(desc in program_desc(), seed in 0u64..100) {
        let mut pool = TermPool::new();
        let p = build_program(&mut pool, &desc);
        let product = p.explicit_product(Spec::PrePost);
        let bound = desc.iter().map(Vec::len).sum::<usize>();
        let full_words = accepted_words(&product, bound);

        // Semantic commutativity relation, reused for the Mazurkiewicz check.
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Semantic);
        let letters: Vec<LetterId> = p.letters().collect();
        let mut commute_table = vec![vec![false; letters.len()]; letters.len()];
        for &a in &letters {
            for &bb in &letters {
                commute_table[a.index()][bb.index()] =
                    oracle.commute(&mut pool, &p, a, bb);
            }
        }
        let commute = |a: LetterId, b: LetterId| commute_table[a.index()][b.index()];

        let orders: Vec<Box<dyn PreferenceOrder>> = vec![
            Box::new(SeqOrder::new()),
            Box::new(LockstepOrder::new()),
            Box::new(RandomOrder::new(seed)),
        ];
        for order in &orders {
            let red = reduction_automaton(
                &mut pool,
                &p,
                Spec::PrePost,
                order.as_ref(),
                &mut oracle,
                ReductionConfig::default(),
            );
            let red_words = accepted_words(&red, bound);
            // (1) subset
            for w in &red_words {
                prop_assert!(
                    full_words.contains(w),
                    "{}: reduction word outside the product: {w:?}",
                    order.name()
                );
            }
            // (2) every class represented (all words have the same length
            // here, so the bound is exact)
            for w in &full_words {
                prop_assert!(
                    red_words.iter().any(|r| equivalent(w, r, commute)),
                    "{}: class of {w:?} unrepresented",
                    order.name()
                );
            }
            // (3) minimality
            prop_assert!(
                check_reduction_minimal(&red_words, commute).is_ok(),
                "{}: two equivalent representatives",
                order.name()
            );
        }
    }

    /// Sleep-only and combined recognize the same reduction (Thm 6.6).
    #[test]
    fn pi_reduction_preserves_language(desc in program_desc()) {
        let mut pool = TermPool::new();
        let p = build_program(&mut pool, &desc);
        let bound = desc.iter().map(Vec::len).sum::<usize>();
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Semantic);
        let sleep_only = reduction_automaton(
            &mut pool, &p, Spec::PrePost, &SeqOrder::new(), &mut oracle,
            ReductionConfig { use_sleep: true, use_persistent: false, max_states: 100_000 },
        );
        let combined = reduction_automaton(
            &mut pool, &p, Spec::PrePost, &SeqOrder::new(), &mut oracle,
            ReductionConfig::default(),
        );
        let mut a = accepted_words(&sleep_only, bound);
        let mut b = accepted_words(&combined, bound);
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        prop_assert!(combined.num_states() <= sleep_only.num_states());
    }
}
