//! Static checks: declaration/scoping rules, types, linearity of
//! arithmetic, and the structural restrictions of `atomic` blocks.

use crate::ast::*;
use crate::Error;
use std::collections::HashMap;

/// Checks `ast`; returns the first error found.
///
/// # Errors
///
/// Undeclared/duplicate variables, type mismatches, nonlinear
/// multiplication, `while` inside `atomic`, unknown spawn templates, or a
/// program spawning no threads.
pub fn check(ast: &Ast) -> Result<(), Error> {
    let mut checker = Checker {
        globals: HashMap::new(),
    };
    for g in &ast.globals {
        if checker.globals.insert(g.name.clone(), g.ty).is_some() {
            return Err(err(format!("duplicate global variable `{}`", g.name)));
        }
        check_init(g)?;
    }
    if let Some(pre) = &ast.requires {
        checker.expect_bool(pre, &checker.globals.clone())?;
    }
    if let Some(post) = &ast.ensures {
        checker.expect_bool(post, &checker.globals.clone())?;
    }
    let mut template_names = Vec::new();
    for t in &ast.threads {
        if template_names.contains(&t.name) {
            return Err(err(format!("duplicate thread template `{}`", t.name)));
        }
        template_names.push(t.name.clone());
        let mut env = checker.globals.clone();
        for l in &t.locals {
            if env.insert(l.name.clone(), l.ty).is_some() {
                return Err(err(format!(
                    "local `{}` shadows another variable in thread `{}`",
                    l.name, t.name
                )));
            }
            check_init(l)?;
        }
        checker.check_block(&t.body, &env, false)?;
    }
    if ast.spawns.is_empty() {
        return Err(err("program spawns no threads".to_owned()));
    }
    for s in &ast.spawns {
        if ast.template(&s.template).is_none() {
            return Err(err(format!("spawn of undefined template `{}`", s.template)));
        }
    }
    Ok(())
}

fn err(message: String) -> Error {
    Error {
        line: 0,
        col: 0,
        message,
    }
}

fn check_init(v: &VarDecl) -> Result<(), Error> {
    match (v.ty, &v.init) {
        (Type::Int, Init::Const(_)) | (Type::Bool, Init::ConstBool(_)) | (_, Init::Nondet) => {
            Ok(())
        }
        _ => Err(err(format!(
            "initializer of `{}` does not match its type",
            v.name
        ))),
    }
}

struct Checker {
    globals: HashMap<String, Type>,
}

impl Checker {
    fn check_block(
        &self,
        stmts: &[Stmt],
        env: &HashMap<String, Type>,
        inside_atomic: bool,
    ) -> Result<(), Error> {
        for s in stmts {
            self.check_stmt(s, env, inside_atomic)?;
        }
        Ok(())
    }

    fn check_stmt(
        &self,
        stmt: &Stmt,
        env: &HashMap<String, Type>,
        inside_atomic: bool,
    ) -> Result<(), Error> {
        match stmt {
            Stmt::Skip => Ok(()),
            Stmt::Havoc(x) => {
                self.lookup(x, env)?;
                Ok(())
            }
            Stmt::Assign(x, e) => {
                let ty = self.lookup(x, env)?;
                match ty {
                    Type::Int => self.expect_int(e, env),
                    Type::Bool => match e {
                        Expr::Nondet => Ok(()),
                        _ => self.expect_bool(e, env),
                    },
                }
            }
            Stmt::Assume(e) | Stmt::Assert(e) => self.expect_bool(e, env),
            Stmt::If(c, then_branch, else_branch) => {
                self.expect_bool(c, env)?;
                self.check_block(then_branch, env, inside_atomic)?;
                self.check_block(else_branch, env, inside_atomic)
            }
            Stmt::While(c, body) => {
                if inside_atomic {
                    return Err(err("`while` is not allowed inside `atomic`".to_owned()));
                }
                self.expect_bool(c, env)?;
                self.check_block(body, env, false)
            }
            Stmt::Atomic(body) => self.check_block(body, env, true),
        }
    }

    fn lookup(&self, name: &str, env: &HashMap<String, Type>) -> Result<Type, Error> {
        env.get(name)
            .copied()
            .ok_or_else(|| err(format!("undeclared variable `{name}`")))
    }

    fn type_of(&self, e: &Expr, env: &HashMap<String, Type>) -> Result<Type, Error> {
        match e {
            Expr::Int(_) => Ok(Type::Int),
            Expr::Bool(_) => Ok(Type::Bool),
            Expr::Nondet => Ok(Type::Bool),
            Expr::Var(v) => self.lookup(v, env),
            Expr::Neg(inner) => {
                self.expect_int(inner, env)?;
                Ok(Type::Int)
            }
            Expr::Not(inner) => {
                self.expect_bool(inner, env)?;
                Ok(Type::Bool)
            }
            Expr::Bin(op, a, b) => match op {
                BinOp::Add | BinOp::Sub => {
                    self.expect_int(a, env)?;
                    self.expect_int(b, env)?;
                    Ok(Type::Int)
                }
                BinOp::Mul => {
                    self.expect_int(a, env)?;
                    self.expect_int(b, env)?;
                    if a.const_int().is_none() && b.const_int().is_none() {
                        Err(err(
                            "nonlinear multiplication: one operand must be constant".to_owned(),
                        ))
                    } else {
                        Ok(Type::Int)
                    }
                }
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    self.expect_int(a, env)?;
                    self.expect_int(b, env)?;
                    Ok(Type::Bool)
                }
                BinOp::And | BinOp::Or => {
                    self.expect_bool(a, env)?;
                    self.expect_bool(b, env)?;
                    Ok(Type::Bool)
                }
            },
        }
    }

    fn expect_int(&self, e: &Expr, env: &HashMap<String, Type>) -> Result<(), Error> {
        if matches!(e, Expr::Nondet) {
            return Err(err(
                "`*` is not an integer expression; use `havoc x;` instead".to_owned(),
            ));
        }
        match self.type_of(e, env)? {
            Type::Int => Ok(()),
            Type::Bool => Err(err(format!("expected an int expression, found bool: {e}"))),
        }
    }

    fn expect_bool(&self, e: &Expr, env: &HashMap<String, Type>) -> Result<(), Error> {
        match self.type_of(e, env)? {
            Type::Bool => Ok(()),
            Type::Int => Err(err(format!("expected a bool expression, found int: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(), Error> {
        check(&parse(src).unwrap())
    }

    #[test]
    fn accepts_well_typed_program() {
        check_src(
            "var x: int = 0; var f: bool;
             thread t { local c: int = 1; if (f && x < 3) { x := x + c; } assert x >= 0; }
             spawn t * 2;",
        )
        .unwrap();
    }

    #[test]
    fn rejects_undeclared() {
        assert!(check_src("thread t { y := 1; } spawn t;")
            .unwrap_err()
            .message
            .contains("undeclared"));
    }

    #[test]
    fn rejects_duplicates_and_shadowing() {
        assert!(
            check_src("var x: int; var x: int; thread t { skip; } spawn t;")
                .unwrap_err()
                .message
                .contains("duplicate global")
        );
        assert!(
            check_src("var x: int; thread t { local x: int; skip; } spawn t;")
                .unwrap_err()
                .message
                .contains("shadows")
        );
    }

    #[test]
    fn rejects_type_mismatches() {
        assert!(check_src("var x: int; thread t { x := true; } spawn t;").is_err());
        assert!(check_src("var f: bool; thread t { f := 3; } spawn t;").is_err());
        assert!(check_src("var x: int; thread t { assume x; } spawn t;").is_err());
        assert!(check_src("var f: bool; thread t { assume f + 1 > 0; } spawn t;").is_err());
    }

    #[test]
    fn rejects_nonlinear_multiplication() {
        assert!(
            check_src("var x: int; var y: int; thread t { x := x * y; } spawn t;")
                .unwrap_err()
                .message
                .contains("nonlinear")
        );
        check_src("var x: int; thread t { x := 2 * x + (1 + 2) * x; } spawn t;").unwrap();
    }

    #[test]
    fn rejects_while_inside_atomic() {
        assert!(check_src(
            "var x: int; thread t { atomic { while (x < 3) { x := x + 1; } } } spawn t;"
        )
        .unwrap_err()
        .message
        .contains("atomic"));
    }

    #[test]
    fn allows_assert_and_if_inside_atomic() {
        check_src(
            "var x: int; thread t { atomic { if (x == 0) { x := 1; } assert x >= 1; } } spawn t;",
        )
        .unwrap();
    }

    #[test]
    fn rejects_unknown_spawn_and_empty_program() {
        assert!(check_src("thread t { skip; } spawn u;")
            .unwrap_err()
            .message
            .contains("undefined template"));
        assert!(check_src("thread t { skip; }")
            .unwrap_err()
            .message
            .contains("spawns no"));
    }

    #[test]
    fn rejects_int_nondet_expr() {
        assert!(check_src("var x: int; thread t { x := * + 1; } spawn t;").is_err());
        // but bool assignment from * is fine
        check_src("var f: bool; thread t { f := *; } spawn t;").unwrap();
    }

    #[test]
    fn checks_requires_ensures() {
        assert!(check_src("var x: int; requires x; thread t { skip; } spawn t;").is_err());
        check_src("var x: int; requires x > 0; ensures x > 1; thread t { x := x + 1; } spawn t;")
            .unwrap();
    }
}
