//! Restart supervision: proof-recycling escalation ladders and crash-safe
//! checkpoint/resume around the refinement engine.
//!
//! The refinement loop accumulates its Floyd/Hoare proof *monotonically*:
//! every assertion learned while refuting a counterexample is a program
//! fact that remains a valid proof candidate forever (the same monotone
//! proof-growth property the paper's shared-proof portfolio exploits).
//! That makes restarts cheap — as long as the proof survives the restart.
//!
//! This module makes it survive, twice over:
//!
//! * **Escalation ladder** ([`supervised_verify`],
//!   [`supervised_parallel_verify`]): when an attempt ends in
//!   [`Verdict::GaveUp`], the supervisor harvests every proof assertion
//!   accumulated so far as pool-independent [`ExportedTerm`]s and restarts
//!   with exponentially escalated resources ([`RetryPolicy`]: the deadline
//!   stretches by `deadline_factor` and per-category step budgets by
//!   `step_factor` per attempt). The fresh engine's proof automaton is
//!   seeded with the recycled assertions, so refinement rounds that
//!   already succeeded are not repeated.
//! * **Crash-safe checkpointing** ([`SuperviseConfig::checkpoint`]): at
//!   round boundaries the supervisor writes a [`Snapshot`] via atomic
//!   temp-file+rename. A killed process (or a SIGINT routed through
//!   [`SuperviseConfig::interrupt`]) resumes from the snapshot
//!   ([`SuperviseConfig::resume`]) and — because the proof-check round is
//!   a deterministic function of (program, order, proof) — reaches the
//!   same verdict in the same cumulative round count as an uninterrupted
//!   run.
//!
//! **Soundness.** Recycled assertions are only ever *candidate* proof
//! components: the proof automaton re-validates every transition with a
//! Hoare-triple query, and a bug verdict replays the trace exactly. A
//! stale, foreign or even adversarial seed can therefore cost completeness
//! (wasted candidate checks), never soundness.
//!
//! **Query-cache sharing across attempts.** The supervisor threads one
//! `TermPool` through every attempt, so the pool's [`smt::qcache`] result
//! cache survives restarts automatically: a Hoare or feasibility query a
//! failed attempt already solved is a cache hit in every escalated retry
//! (and, through [`parallel_verify`]'s pool clones, in every worker). This
//! composes with proof recycling — recycled assertions skip refinement
//! rounds, cached verdicts make the re-validation of whatever remains
//! nearly free. Sharing is sound because the cache stores only definitive
//! sat/unsat verdicts of canonical (pool-independent) formulas, never the
//! `Unknown`/`GaveUp` outcomes a tripped governor produces.

use crate::certify::SpecCert;
use crate::engine::{Engine, RoundOutcome};
use crate::govern::{
    panic_reason, push_give_up_deduped, AttributedGiveUp, Category, GiveUp, ResourceGovernor,
};
use crate::portfolio::{parallel_verify, EngineStatus, ParallelConfig, ParallelOutcome};
use crate::proof::ProofAutomaton;
use crate::snapshot::Snapshot;
use crate::verify::{assemble_certificate, specs_of, Outcome, RunStats, Verdict, VerifierConfig};
use program::concurrent::{LetterId, Program, Spec};
use smt::term::TermPool;
use smt::transfer::ExportedTerm;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The escalation ladder: how many restarts a run gets and how fast its
/// resource limits grow between them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of restarts after the initial attempt.
    pub max_retries: u32,
    /// Per-retry multiplier on the wall-clock deadline.
    pub deadline_factor: u32,
    /// Per-retry multiplier on per-category step budgets (and the
    /// per-round visited-state cap).
    pub step_factor: u32,
}

impl Default for RetryPolicy {
    /// No retries; ×2 ladders once retries are enabled.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            deadline_factor: 2,
            step_factor: 2,
        }
    }
}

impl RetryPolicy {
    /// A policy with `n` retries at the default ×2 escalation.
    pub fn with_retries(n: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries: n,
            ..RetryPolicy::default()
        }
    }

    /// Sets both escalation factors; builder style.
    pub fn escalating_by(mut self, factor: u32) -> RetryPolicy {
        self.deadline_factor = factor;
        self.step_factor = factor;
        self
    }

    /// Parses an `--escalate` factor spec: `4x` or a bare `4`. The factor
    /// applies to both the deadline and the step budgets.
    pub fn parse_factor(spec: &str) -> Result<u32, String> {
        let digits = spec.strip_suffix('x').unwrap_or(spec);
        let f: u32 = digits
            .parse()
            .map_err(|_| format!("invalid escalation factor `{spec}` (expected e.g. 4x)"))?;
        if f == 0 {
            return Err("escalation factor must be at least 1".to_owned());
        }
        Ok(f)
    }
}

/// Full supervision configuration.
#[derive(Clone, Debug, Default)]
pub struct SuperviseConfig {
    /// The escalation ladder.
    pub policy: RetryPolicy,
    /// Where to write round-boundary checkpoints (`None`: no
    /// checkpointing).
    pub checkpoint: Option<PathBuf>,
    /// Resume state loaded from a snapshot file.
    pub resume: Option<Snapshot>,
    /// Cooperative interrupt flag (the CLI's SIGINT hook): when raised,
    /// the supervisor writes a final checkpoint at the next round boundary
    /// and returns with [`SupervisedOutcome::interrupted`] set.
    pub interrupt: Option<Arc<AtomicBool>>,
}

impl SuperviseConfig {
    /// A config that only retries (no checkpointing, no resume).
    pub fn retrying(policy: RetryPolicy) -> SuperviseConfig {
        SuperviseConfig {
            policy,
            ..SuperviseConfig::default()
        }
    }
}

/// One rung of the ladder, as reported back to the caller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttemptReport {
    /// Absolute attempt number (0 = the initial run; resumed runs
    /// continue their snapshot's counter).
    pub attempt: u32,
    /// Refinement rounds this attempt executed.
    pub rounds: usize,
    /// Recycled assertions seeded into this attempt's proof automata.
    pub seeded: usize,
    /// `None` when the attempt concluded (or was interrupted).
    pub give_up: Option<GiveUp>,
}

/// Result of a supervised run.
#[derive(Clone, Debug)]
pub struct SupervisedOutcome {
    /// Final verdict and aggregated statistics. `stats.rounds` includes
    /// the rounds carried in from a resumed snapshot, so a kill/resume
    /// pair reports the same cumulative round count as an uninterrupted
    /// run.
    pub outcome: Outcome,
    /// One report per attempt this process executed.
    pub attempts: Vec<AttemptReport>,
    /// Give-up history across attempts, deduped by `(engine, category)`.
    pub give_up_history: Vec<AttributedGiveUp>,
    /// Assertions seeded into the final attempt.
    pub recycled_assertions: usize,
    /// Rounds whose refinement work was *not* repeated by the final
    /// attempt: rounds carried in from the snapshot plus rounds executed
    /// by earlier (failed) attempts whose assertions were recycled.
    pub rounds_skipped: usize,
    /// The run stopped at a round boundary because the interrupt flag was
    /// raised; a final checkpoint was written if a path was configured.
    pub interrupted: bool,
    /// The last checkpoint-write failure, if any (checkpointing is
    /// best-effort: an unwritable path degrades the run to unsupervised,
    /// it does not abort verification).
    pub checkpoint_error: Option<String>,
    /// Every proof assertion the run accumulated, across all specs and
    /// attempts, exported pool-independently in discovery order — what a
    /// proof store persists so a re-submitted program warm-starts instead
    /// of re-deriving its proof. Assertions are only ever *candidates* on
    /// re-use (re-validated by Hoare queries), so recycling them is sound.
    pub harvest: Vec<ExportedTerm>,
}

impl SupervisedOutcome {
    /// Restarts used beyond the first attempt of this process.
    pub fn retries_used(&self) -> usize {
        self.attempts.len().saturating_sub(1)
    }

    /// The recycling effectiveness metric reported by the benches:
    /// `rounds skipped / rounds total`, where *skipped* rounds are those
    /// whose assertions were recycled instead of re-derived by the final
    /// attempt. `0.0` when nothing was recycled.
    pub fn recycle_hit_rate(&self) -> f64 {
        recycle_hit_rate(self.rounds_skipped, &self.attempts)
    }
}

fn recycle_hit_rate(rounds_skipped: usize, attempts: &[AttemptReport]) -> f64 {
    if rounds_skipped == 0 {
        return 0.0;
    }
    let executed = attempts.last().map_or(0, |a| a.rounds);
    rounds_skipped as f64 / (rounds_skipped + executed) as f64
}

/// How one spec phase of one attempt ended.
enum SpecEnd {
    Proven,
    Bug(Vec<LetterId>),
    GaveUp(GiveUp),
    Interrupted,
}

/// Mutable supervisor state threaded through attempts and spec phases.
struct SupervisorState {
    program_hash: u64,
    config_name: String,
    checkpoint: Option<PathBuf>,
    checkpoint_error: Option<String>,
    interrupt: Option<Arc<AtomicBool>>,
    attempt: u32,
    specs_done: usize,
    /// Rounds carried in from the resumed snapshot.
    base_rounds: usize,
    /// Work counters for this process (all attempts).
    stats: RunStats,
    /// Recycled assertions for the in-progress spec, discovery order.
    recycled: Vec<ExportedTerm>,
    recycled_set: HashSet<ExportedTerm>,
    give_ups: Vec<AttributedGiveUp>,
    /// Everything harvested across all specs and attempts (deduped,
    /// discovery order) — survives `clear_recycled` and is returned as
    /// [`SupervisedOutcome::harvest`].
    all_harvest: Vec<ExportedTerm>,
    all_harvest_set: HashSet<ExportedTerm>,
    /// One recorded certificate per proven spec, in spec order. Specs
    /// proven by a pre-crash process (resumed from a snapshot) have no
    /// recording, so the run's overall certificate degrades to `None`.
    spec_certs: Vec<Option<SpecCert>>,
}

impl SupervisorState {
    fn interrupted(&self) -> bool {
        self.interrupt
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Total completed rounds (snapshot + this process).
    fn rounds_completed(&self) -> usize {
        self.base_rounds + self.stats.rounds
    }

    /// Merges a proof's assertions into the recycled pool (deduped,
    /// discovery order preserved) and the run-wide harvest.
    fn harvest(&mut self, pool: &TermPool, proof: &ProofAutomaton) {
        for &id in proof.assertions() {
            let exported = pool.export(id);
            if self.recycled_set.insert(exported.clone()) {
                self.recycled.push(exported.clone());
            }
            if self.all_harvest_set.insert(exported.clone()) {
                self.all_harvest.push(exported);
            }
        }
    }

    /// Records a finished spec phase's proof in the run-wide harvest only
    /// (the recycled pool stays untouched — a *successful* phase's
    /// assertions must not leak into the next spec's seeds, exactly like
    /// an unsupervised run).
    fn harvest_all_only(&mut self, pool: &TermPool, proof: &ProofAutomaton) {
        for &id in proof.assertions() {
            let exported = pool.export(id);
            if self.all_harvest_set.insert(exported.clone()) {
                self.all_harvest.push(exported);
            }
        }
    }

    /// Forgets the recycled pool (on spec completion: the next spec
    /// starts from an empty proof, exactly like an unsupervised run).
    fn clear_recycled(&mut self) {
        self.recycled.clear();
        self.recycled_set.clear();
    }

    /// Writes a round-boundary checkpoint if a path is configured.
    /// Best-effort: failures are recorded, not fatal.
    fn write_checkpoint(&mut self, pool: &TermPool, proof: Option<&ProofAutomaton>) {
        let Some(path) = self.checkpoint.clone() else {
            return;
        };
        let assertions = match proof {
            Some(proof) => proof
                .assertions()
                .iter()
                .map(|&id| pool.export(id))
                .collect(),
            None => self.recycled.clone(),
        };
        let snapshot = Snapshot {
            program_hash: self.program_hash,
            config_name: self.config_name.clone(),
            attempt: self.attempt,
            specs_done: self.specs_done,
            rounds_completed: self.rounds_completed(),
            give_ups: self.give_ups.clone(),
            assertions,
        };
        if let Err(e) = snapshot.save_atomic(&path) {
            self.checkpoint_error = Some(e);
        }
    }
}

/// Verifies `program` under `config` with restart supervision: escalated
/// retries recycle the partial proof of every failed attempt, and (when
/// configured) round-boundary checkpoints make the run crash-safe.
///
/// A resumed run (via [`SuperviseConfig::resume`]) whose snapshot does
/// not match `program` refuses to start and reports a give-up — it never
/// silently verifies the wrong program against recycled state.
pub fn supervised_verify(
    pool: &mut TermPool,
    program: &Program,
    config: &VerifierConfig,
    scfg: &SuperviseConfig,
) -> SupervisedOutcome {
    let start = Instant::now();
    let mut state = SupervisorState {
        program_hash: crate::snapshot::program_fingerprint(pool, program),
        config_name: config.name.clone(),
        checkpoint: scfg.checkpoint.clone(),
        checkpoint_error: None,
        interrupt: scfg.interrupt.clone(),
        attempt: 0,
        specs_done: 0,
        base_rounds: 0,
        stats: RunStats::default(),
        recycled: Vec::new(),
        recycled_set: HashSet::new(),
        give_ups: Vec::new(),
        all_harvest: Vec::new(),
        all_harvest_set: HashSet::new(),
        spec_certs: Vec::new(),
    };
    let mut attempts: Vec<AttemptReport> = Vec::new();

    if let Some(snap) = &scfg.resume {
        if snap.program_hash != state.program_hash {
            return SupervisedOutcome {
                outcome: Outcome {
                    verdict: Verdict::gave_up(
                        Category::Cancelled,
                        format!(
                            "snapshot program hash {:016x} does not match this program \
                             ({:016x}); refusing to resume",
                            snap.program_hash, state.program_hash
                        ),
                    ),
                    stats: RunStats::default(),
                    certificate: None,
                },
                attempts,
                give_up_history: Vec::new(),
                recycled_assertions: 0,
                rounds_skipped: 0,
                interrupted: false,
                checkpoint_error: None,
                harvest: Vec::new(),
            };
        }
        state.attempt = snap.attempt;
        state.specs_done = snap.specs_done;
        // Specs proven before the crash have no recorded certificate.
        state.spec_certs = vec![None; snap.specs_done];
        state.base_rounds = snap.rounds_completed;
        for g in &snap.give_ups {
            push_give_up_deduped(&mut state.give_ups, g.clone());
        }
        for t in &snap.assertions {
            if state.recycled_set.insert(t.clone()) {
                state.recycled.push(t.clone());
            }
        }
    }

    let specs = specs_of(program);
    let previous_governor = pool.governor().clone();
    let last_attempt = scfg.policy.max_retries.max(state.attempt);
    let mut interrupted = false;

    let verdict = loop {
        let attempt = state.attempt;
        let mut attempt_config = config.clone();
        attempt_config.govern = config.govern.escalated(
            attempt,
            scfg.policy.deadline_factor,
            scfg.policy.step_factor,
        );
        attempt_config.max_visited_per_round = config
            .max_visited_per_round
            .saturating_mul(scfg.policy.step_factor.saturating_pow(attempt).max(1) as usize);
        let governor = attempt_config.govern.build();
        pool.set_governor(governor.clone());

        let seeded = state.recycled.len();
        let mut attempt_rounds = 0usize;
        let mut attempt_end: Option<SpecEnd> = None;
        while state.specs_done < specs.len() {
            let spec = specs[state.specs_done];
            let (end, rounds) =
                run_spec(pool, program, spec, &attempt_config, &governor, &mut state);
            attempt_rounds += rounds;
            if let SpecEnd::Proven = end {
                state.specs_done += 1;
                state.clear_recycled();
                // Record the spec transition so a crash right here resumes
                // into the next spec, not back into this one.
                state.write_checkpoint(pool, None);
            } else {
                attempt_end = Some(end);
                break;
            }
        }

        let give_up = match &attempt_end {
            Some(SpecEnd::GaveUp(g)) => Some(g.clone()),
            _ => None,
        };
        if let Some(g) = &give_up {
            push_give_up_deduped(
                &mut state.give_ups,
                AttributedGiveUp::new(&config.name, g.clone()),
            );
        }
        attempts.push(AttemptReport {
            attempt,
            rounds: attempt_rounds,
            seeded,
            give_up: give_up.clone(),
        });

        match attempt_end {
            None => break Verdict::Correct,
            Some(SpecEnd::Proven) => unreachable!("proven specs advance the loop"),
            Some(SpecEnd::Bug(trace)) => break Verdict::Incorrect { trace },
            Some(SpecEnd::Interrupted) => {
                interrupted = true;
                break Verdict::gave_up(
                    Category::Cancelled,
                    "interrupted at a round boundary; checkpoint written",
                );
            }
            Some(SpecEnd::GaveUp(g)) => {
                if attempt < last_attempt && !state.interrupted() {
                    // Escalate and restart; the recycled pool already
                    // holds this attempt's harvest.
                    state.attempt += 1;
                } else {
                    break Verdict::GaveUp(GiveUp::new(
                        g.category,
                        format!(
                            "gave up after {} attempt(s) (last cause: {})",
                            attempts.len(),
                            g.reason
                        ),
                    ));
                }
            }
        }
    };

    pool.set_governor(previous_governor);
    let certificate = if config.certify {
        // A bug ends the run inside the spec `specs_done` points at.
        let failed_spec = specs.get(state.specs_done).copied();
        let spec_certs = std::mem::take(&mut state.spec_certs);
        assemble_certificate(pool, program, &verdict, spec_certs, failed_spec)
    } else {
        None
    };
    let final_rounds = attempts.last().map_or(0, |a| a.rounds);
    let rounds_skipped = state.rounds_completed().saturating_sub(final_rounds);
    let recycled_assertions = attempts.last().map_or(0, |a| a.seeded);
    let base_rounds = state.base_rounds;
    let mut stats = state.stats;
    stats.rounds += base_rounds;
    stats.time = start.elapsed();
    SupervisedOutcome {
        outcome: Outcome {
            verdict,
            stats,
            certificate,
        },
        attempts,
        give_up_history: state.give_ups,
        recycled_assertions,
        rounds_skipped,
        interrupted,
        checkpoint_error: state.checkpoint_error,
        harvest: state.all_harvest,
    }
}

/// Runs one spec phase of one attempt: seeds the proof with the recycled
/// assertions, drives rounds with round-boundary checkpoints and
/// interrupt checks, and harvests the proof whenever the phase cannot
/// conclude.
fn run_spec(
    pool: &mut TermPool,
    program: &Program,
    spec: Spec,
    config: &VerifierConfig,
    governor: &ResourceGovernor,
    state: &mut SupervisorState,
) -> (SpecEnd, usize) {
    let mut engine = Engine::new(pool, program, spec, config);
    let mut proof = ProofAutomaton::new();
    for t in &state.recycled {
        let id = pool.import(t);
        proof.add_assertion(id);
    }
    let mut rounds = 0usize;
    let end = loop {
        if state.interrupted() {
            state.harvest(pool, &proof);
            state.write_checkpoint(pool, Some(&proof));
            break SpecEnd::Interrupted;
        }
        if rounds >= config.max_rounds {
            state.harvest(pool, &proof);
            break SpecEnd::GaveUp(GiveUp::new(
                Category::Rounds,
                format!("no proof within {} refinement rounds", config.max_rounds),
            ));
        }
        if let Err(g) = governor.charge(Category::Rounds) {
            state.harvest(pool, &proof);
            break SpecEnd::GaveUp(g);
        }
        // Contain injected panics at round granularity so the proof built
        // so far stays harvestable.
        let outcome = catch_unwind(AssertUnwindSafe(|| engine.round(pool, program, &mut proof)))
            .unwrap_or_else(|payload| {
                RoundOutcome::GaveUp(
                    governor
                        .give_up()
                        .filter(|g| g.category == Category::InjectedFault)
                        .unwrap_or_else(|| {
                            GiveUp::new(
                                Category::InjectedFault,
                                format!("panic contained: {}", panic_reason(payload.as_ref())),
                            )
                        }),
                )
            });
        rounds += 1;
        state.stats.rounds += 1;
        match outcome {
            RoundOutcome::Refined => {
                state.write_checkpoint(pool, Some(&proof));
            }
            RoundOutcome::Proven => {
                let cert = engine.record_spec_cert(pool, program, &mut proof);
                state.spec_certs.push(cert);
                break SpecEnd::Proven;
            }
            RoundOutcome::Bug(trace) => break SpecEnd::Bug(trace),
            RoundOutcome::GaveUp(g) => {
                state.harvest(pool, &proof);
                break SpecEnd::GaveUp(g);
            }
            RoundOutcome::Cancelled => {
                state.harvest(pool, &proof);
                break SpecEnd::GaveUp(GiveUp::new(Category::Cancelled, "round cancelled"));
            }
        }
    };
    // Every spec end contributes to the run-wide harvest (give-up paths
    // already did through `harvest`; this also covers Proven/Bug ends).
    state.harvest_all_only(pool, &proof);
    state.stats.visited_states += engine.stats.visited;
    state.stats.max_round_visited = state
        .stats
        .max_round_visited
        .max(engine.stats.max_round_visited);
    state.stats.cache_skips += engine.stats.cache_skips;
    state.stats.qcache_hits += engine.stats.qcache_hits;
    state.stats.qcache_misses += engine.stats.qcache_misses;
    state.stats.hoare_checks += proof.stats().hoare_checks;
    state.stats.proof_size = state.stats.proof_size.max(proof.proof_size());
    state.stats.interpolation.feasibility_checks += engine.stats.interpolation.feasibility_checks;
    state.stats.interpolation.sliced_statements += engine.stats.interpolation.sliced_statements;
    state.stats.interpolation.farkas_chains += engine.stats.interpolation.farkas_chains;
    (end, rounds)
}

// ---------------------------------------------------------------------------
// Supervised parallel portfolio
// ---------------------------------------------------------------------------

/// Result of [`supervised_parallel_verify`].
#[derive(Clone, Debug)]
pub struct SupervisedParallelOutcome {
    /// The final attempt's portfolio result.
    pub result: ParallelOutcome,
    /// One report per attempt.
    pub attempts: Vec<AttemptReport>,
    /// Give-up history across attempts and engines, deduped by
    /// `(engine, category)`.
    pub give_up_history: Vec<AttributedGiveUp>,
    /// Assertions seeded into the final attempt.
    pub recycled_assertions: usize,
    /// Rounds executed by failed attempts whose assertions were recycled.
    pub rounds_skipped: usize,
}

impl SupervisedParallelOutcome {
    /// Restarts used beyond the first attempt.
    pub fn retries_used(&self) -> usize {
        self.attempts.len().saturating_sub(1)
    }

    /// As [`SupervisedOutcome::recycle_hit_rate`].
    pub fn recycle_hit_rate(&self) -> f64 {
        recycle_hit_rate(self.rounds_skipped, &self.attempts)
    }
}

/// The escalation ladder around [`parallel_verify`]: a pool-wide
/// `GaveUp` harvests every worker's proof (exported by the portfolio's
/// exit path), escalates each member's governor plus the shared
/// wall-clock budget, and reruns with the union of all harvested
/// assertions seeded into every worker.
pub fn supervised_parallel_verify(
    pool: &TermPool,
    program: &Program,
    configs: &[VerifierConfig],
    pcfg: &ParallelConfig,
    policy: &RetryPolicy,
) -> SupervisedParallelOutcome {
    let mut attempts: Vec<AttemptReport> = Vec::new();
    let mut give_ups: Vec<AttributedGiveUp> = Vec::new();
    let mut recycled: Vec<ExportedTerm> = Vec::new();
    let mut recycled_set: HashSet<ExportedTerm> = HashSet::new();
    let mut rounds_skipped = 0usize;

    for attempt in 0..=policy.max_retries {
        let attempt_configs: Vec<VerifierConfig> = configs
            .iter()
            .map(|c| {
                let mut escalated = c.clone();
                escalated.govern =
                    c.govern
                        .escalated(attempt, policy.deadline_factor, policy.step_factor);
                escalated.max_visited_per_round = c
                    .max_visited_per_round
                    .saturating_mul(policy.step_factor.saturating_pow(attempt).max(1) as usize);
                escalated
            })
            .collect();
        let mut attempt_pcfg = pcfg.clone();
        attempt_pcfg.seed = recycled.clone();
        attempt_pcfg.wall_clock_budget = pcfg
            .wall_clock_budget
            .map(|b| b.saturating_mul(policy.deadline_factor.saturating_pow(attempt).max(1)));

        let seeded = recycled.len();
        let result = parallel_verify(pool, program, &attempt_configs, &attempt_pcfg);
        let attempt_rounds = result.outcome.stats.rounds;
        let gave_up = result.outcome.verdict.give_up().cloned();
        // Per-engine causes, deduped by (engine, category) across the
        // whole ladder — an escalated retry tripping over the same root
        // cause is not double-reported.
        for report in &result.engines {
            if let EngineStatus::GaveUp(g) = &report.status {
                push_give_up_deduped(
                    &mut give_ups,
                    AttributedGiveUp::new(&report.name, g.clone()),
                );
            }
        }
        attempts.push(AttemptReport {
            attempt,
            rounds: attempt_rounds,
            seeded,
            give_up: gave_up.clone(),
        });

        if gave_up.is_none() || attempt == policy.max_retries {
            return SupervisedParallelOutcome {
                result,
                attempts,
                give_up_history: give_ups,
                recycled_assertions: seeded,
                rounds_skipped,
            };
        }
        // Recycle the harvest and climb the ladder.
        for t in &result.harvest {
            if recycled_set.insert(t.clone()) {
                recycled.push(t.clone());
            }
        }
        rounds_skipped += attempt_rounds;
    }
    unreachable!("the ladder loop returns on its last attempt");
}
