//! **Table 2**: proof size for successfully verified correct programs and
//! time per refinement round for all successfully analysed programs —
//! Automizer vs. five GemCutter variants (portfolio, sleep-only,
//! persistent-only, lockstep, and the multi-threaded shared-proof
//! parallel portfolio), plus the solver-level query-cache ablation
//! (`seq` vs. `seq-nocache`). The ablation pair is asserted identical
//! per benchmark (verdict, trace, rounds, proof size) and its measured
//! time-per-round speedup and hit rates are emitted to
//! `BENCH_qcache.json` for the perf trajectory.
//!
//! Run: `cargo run --release -p bench --bin table2`

use bench::{run_config, run_parallel, run_portfolio, run_supervised, Aggregate, Run};
use bench_suite::{Expected, Suite};
use gemcutter::govern::Category;
use gemcutter::portfolio::ParallelConfig;
use gemcutter::supervise::RetryPolicy;
use gemcutter::verify::{Verdict, VerifierConfig};
use smt::SolverKind;

/// DFS-state budget for the supervised column's *first* attempt. Tight
/// enough that the harder corpus programs give up initially, so the
/// escalation ladder (and its recycle hit rate) has something to show.
const SUPERVISED_DFS_BUDGET: u64 = 400;

struct Column {
    name: &'static str,
    runs: Vec<Run>,
}

fn proof_size_row(cols: &[Column], suite: Option<Suite>) -> Vec<f64> {
    cols.iter()
        .map(|c| {
            let agg = Aggregate::of(c.runs.iter(), |r| {
                r.expected == Expected::Safe && suite.is_none_or(|s| r.suite == s)
            });
            if agg.count == 0 {
                f64::NAN
            } else {
                agg.proof_size as f64 / agg.count as f64
            }
        })
        .collect()
}

fn time_per_round_row(cols: &[Column], suite: Option<Suite>) -> Vec<f64> {
    cols.iter()
        .map(|c| {
            let agg = Aggregate::of(c.runs.iter(), |r| suite.is_none_or(|s| r.suite == s));
            if agg.rounds == 0 {
                f64::NAN
            } else {
                agg.time_s / agg.rounds as f64
            }
        })
        .collect()
}

fn print_row(label: &str, values: &[f64], unit: &str) {
    print!("  {label:12}");
    for v in values {
        print!(" {v:>10.3}{unit}");
    }
    println!();
}

/// Count of runs that gave up with `category`, per column. `None` counts
/// give-ups outside the categories listed in the table.
fn give_up_row(cols: &[Column], category: Option<Category>, listed: &[Category]) -> Vec<usize> {
    cols.iter()
        .map(|c| {
            c.runs
                .iter()
                .filter(|r| match (&r.outcome.verdict, category) {
                    (Verdict::GaveUp(g), Some(cat)) => g.category == cat,
                    (Verdict::GaveUp(g), None) => !listed.contains(&g.category),
                    _ => false,
                })
                .count()
        })
        .collect()
}

fn print_count_row(label: &str, values: &[usize]) {
    print!("  {label:16}");
    for v in values {
        print!(" {v:>11}");
    }
    println!();
}

/// Query-cache hit rate (hits / lookups) per column; NaN when a column
/// never touched the cache (e.g. the `seq-nocache` ablation).
fn hit_rate_row(cols: &[Column]) -> Vec<f64> {
    cols.iter()
        .map(|c| {
            let (hits, misses) = c.runs.iter().fold((0u64, 0u64), |(h, m), r| {
                (
                    h + r.outcome.stats.qcache_hits,
                    m + r.outcome.stats.qcache_misses,
                )
            });
            if hits + misses == 0 {
                f64::NAN
            } else {
                hits as f64 / (hits + misses) as f64
            }
        })
        .collect()
}

/// Useless-cache hit rate (skips / probes) per column; NaN when a column
/// never probed the cache.
fn useless_rate_row(cols: &[Column]) -> Vec<f64> {
    cols.iter()
        .map(|c| {
            let (skips, probes) = c.runs.iter().fold((0usize, 0usize), |(s, p), r| {
                (
                    s + r.outcome.stats.cache_skips,
                    p + r.outcome.stats.useless_probes,
                )
            });
            if probes == 0 {
                f64::NAN
            } else {
                skips as f64 / probes as f64
            }
        })
        .collect()
}

/// Final useless-cache size per column (entries, summed over runs — a
/// memory gauge for the §7.2 cache rather than a rate).
fn useless_len_row(cols: &[Column]) -> Vec<usize> {
    cols.iter()
        .map(|c| c.runs.iter().map(|r| r.outcome.stats.useless_len).sum())
        .collect()
}

/// Aggregated measurements of one ablation side for `BENCH_qcache.json`.
struct CacheSide {
    time_s: f64,
    rounds: usize,
    hoare_checks: usize,
    hits: u64,
    misses: u64,
}

impl CacheSide {
    fn of(runs: &[Run]) -> CacheSide {
        let mut side = CacheSide {
            time_s: 0.0,
            rounds: 0,
            hoare_checks: 0,
            hits: 0,
            misses: 0,
        };
        for r in runs {
            side.time_s += r.time_s();
            side.rounds += r.outcome.stats.rounds;
            side.hoare_checks += r.outcome.stats.hoare_checks;
            side.hits += r.outcome.stats.qcache_hits;
            side.misses += r.outcome.stats.qcache_misses;
        }
        side
    }

    fn time_per_round(&self) -> f64 {
        if self.rounds == 0 {
            f64::NAN
        } else {
            self.time_s / self.rounds as f64
        }
    }

    fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            0.0
        } else {
            self.hits as f64 / (self.hits + self.misses) as f64
        }
    }

    fn json(&self, name: &str) -> String {
        format!(
            "    {{\"config\": \"{name}\", \"time_s\": {:.6}, \"rounds\": {}, \
             \"time_per_round_s\": {:.6}, \"hoare_checks\": {}, \
             \"qcache_hits\": {}, \"qcache_misses\": {}, \"hit_rate\": {:.4}}}",
            self.time_s,
            self.rounds,
            self.time_per_round(),
            self.hoare_checks,
            self.hits,
            self.misses,
            self.hit_rate()
        )
    }
}

/// Asserts the ablation pair is observationally identical per benchmark:
/// same verdict (including any counterexample trace), same round count,
/// same final proof size — the cache may only change *who computes* a
/// verdict, never the verdict. Also asserts the cache-off side really ran
/// cache-free.
fn assert_cache_identity(cached: &[Run], cold: &[Run]) {
    assert_eq!(cached.len(), cold.len());
    for (on, off) in cached.iter().zip(cold) {
        assert_eq!(on.name, off.name);
        assert_eq!(
            on.outcome.verdict, off.outcome.verdict,
            "QCACHE SOUNDNESS BUG on {}: verdict differs with cache on/off",
            on.name
        );
        assert_eq!(
            on.outcome.stats.rounds, off.outcome.stats.rounds,
            "QCACHE DRIFT on {}: round count differs with cache on/off",
            on.name
        );
        assert_eq!(
            on.outcome.stats.proof_size, off.outcome.stats.proof_size,
            "QCACHE DRIFT on {}: proof size differs with cache on/off",
            on.name
        );
        assert_eq!(
            (
                off.outcome.stats.qcache_hits,
                off.outcome.stats.qcache_misses
            ),
            (0, 0),
            "cache-off run of {} touched the cache",
            on.name
        );
    }
}

/// Asserts the solver ablation pair is observationally identical per
/// benchmark: the boolean search engine decides the same decision
/// problems, so swapping CDCL for the legacy DPLL may change time, never
/// the verdict, the counterexample handling, or the refinement
/// trajectory (round count and final proof size).
fn assert_solver_identity(cdcl: &[Run], dpll: &[Run]) {
    assert_eq!(cdcl.len(), dpll.len());
    for (new, old) in cdcl.iter().zip(dpll) {
        assert_eq!(new.name, old.name);
        assert_eq!(
            new.outcome.verdict, old.outcome.verdict,
            "SOLVER SOUNDNESS BUG on {}: verdict differs between cdcl and dpll",
            new.name
        );
        assert_eq!(
            new.outcome.stats.rounds, old.outcome.stats.rounds,
            "SOLVER DRIFT on {}: round count differs between cdcl and dpll",
            new.name
        );
        assert_eq!(
            new.outcome.stats.proof_size, old.outcome.stats.proof_size,
            "SOLVER DRIFT on {}: proof size differs between cdcl and dpll",
            new.name
        );
    }
}

fn main() {
    let corpus = bench::corpus();
    println!("Table 2: proof size and proof-check efficiency per configuration\n");

    let mut tight = VerifierConfig::gemcutter_seq();
    tight.name = "supervised".to_owned();
    tight.govern.dfs_state_budget = Some(SUPERVISED_DFS_BUDGET);
    let policy = RetryPolicy::with_retries(3).escalating_by(4);
    let supervised = run_supervised(&corpus, &tight, policy);

    // Query-cache ablation pair: the sequential configuration with the
    // solver-level cache on (the default) and off.
    let seq_runs = run_config(&corpus, &VerifierConfig::gemcutter_seq());
    let mut nocache = VerifierConfig::gemcutter_seq().without_qcache();
    nocache.name = "seq-nocache".to_owned();
    let nocache_runs = run_config(&corpus, &nocache);
    assert_cache_identity(&seq_runs, &nocache_runs);

    // Solver ablation pair: the same sequential configuration with the
    // legacy DPLL engine. `seq` above runs the default (CDCL).
    let mut dpll = VerifierConfig::gemcutter_seq().with_solver(SolverKind::Dpll);
    dpll.name = "seq-dpll".to_owned();
    let dpll_runs = run_config(&corpus, &dpll);
    assert_solver_identity(&seq_runs, &dpll_runs);

    let cols = vec![
        Column {
            name: "automizer",
            runs: run_config(&corpus, &VerifierConfig::automizer()),
        },
        Column {
            name: "seq",
            runs: seq_runs,
        },
        Column {
            name: "seq-nocache",
            runs: nocache_runs,
        },
        Column {
            name: "seq-dpll",
            runs: dpll_runs,
        },
        Column {
            name: "portfolio",
            runs: run_portfolio(&corpus, false)
                .into_iter()
                .map(|(r, _)| r)
                .collect(),
        },
        Column {
            name: "sleep",
            runs: run_config(&corpus, &VerifierConfig::sleep_only()),
        },
        Column {
            name: "persistent",
            runs: run_config(&corpus, &VerifierConfig::persistent_only()),
        },
        Column {
            name: "lockstep",
            runs: run_config(&corpus, &VerifierConfig::gemcutter_lockstep()),
        },
        Column {
            name: "parallel",
            runs: run_parallel(&corpus, &[], &ParallelConfig::default())
                .into_iter()
                .map(|(r, _)| r)
                .collect(),
        },
        Column {
            name: "supervised",
            runs: supervised.iter().map(|s| s.run.clone()).collect(),
        },
    ];

    print!("  {:12}", "");
    for c in &cols {
        print!(" {:>11}", c.name);
    }
    println!();

    println!("Proof size for successfully verified correct programs (avg #assertions)");
    print_row("total", &proof_size_row(&cols, None), " ");
    print_row(
        "- SV-COMP",
        &proof_size_row(&cols, Some(Suite::SvComp)),
        " ",
    );
    print_row("- Weaver", &proof_size_row(&cols, Some(Suite::Weaver)), " ");

    println!("Time per refinement round (in s) for successfully analysed programs");
    print_row("total", &time_per_round_row(&cols, None), "s");
    print_row(
        "- SV-COMP",
        &time_per_round_row(&cols, Some(Suite::SvComp)),
        "s",
    );
    print_row(
        "- Weaver",
        &time_per_round_row(&cols, Some(Suite::Weaver)),
        "s",
    );

    println!("Query-cache hit rate (hits / lookups; NaN = cache disabled or untouched)");
    print_row("total", &hit_rate_row(&cols), " ");

    println!("Useless-cache hit rate (skips / probes; NaN = never probed)");
    print_row("total", &useless_rate_row(&cols), " ");
    println!("Useless-cache entries at exit (memory gauge, summed over runs)");
    print_count_row("total", &useless_len_row(&cols));

    println!("Give-ups per resource category (count of inconclusive runs)");
    let listed = [
        Category::Deadline,
        Category::SimplexPivots,
        Category::DfsStates,
        Category::Rounds,
        Category::UnknownTheory,
    ];
    for cat in listed {
        print_count_row(cat.name(), &give_up_row(&cols, Some(cat), &listed));
    }
    print_count_row("other", &give_up_row(&cols, None, &listed));

    // Restart supervision: retries used and recycle hit rate under a tight
    // first-attempt budget (the `supervised` column above).
    println!();
    println!(
        "Restart supervision (dfs-states budget {SUPERVISED_DFS_BUDGET}, retries {}, escalate {}x)",
        policy.max_retries, policy.step_factor
    );
    let retried: Vec<_> = supervised.iter().filter(|s| s.retries_used > 0).collect();
    let converted = retried.iter().filter(|s| s.run.successful()).count();
    let with_recycling = supervised.iter().filter(|s| s.hit_rate > 0.0).count();
    println!(
        "  programs escalated: {} of {} ({} converted to a conclusive verdict)",
        retried.len(),
        supervised.len(),
        converted
    );
    println!("  programs with recycle hit rate > 0: {with_recycling}");
    println!(
        "  {:24} {:>8} {:>9} {:>8} {:>9}",
        "", "retries", "recycled", "skipped", "hit rate"
    );
    for s in &retried {
        println!(
            "  {:24} {:>8} {:>9} {:>8} {:>8.0}%",
            s.run.name,
            s.retries_used,
            s.recycled,
            s.rounds_skipped,
            s.hit_rate * 100.0
        );
    }

    // Paper shape: the portfolio's average proof size beats the baseline's.
    let total = proof_size_row(&cols, None);
    let col_idx = |name: &str| cols.iter().position(|c| c.name == name).expect("column");
    println!();
    println!(
        "Paper shape: portfolio avg proof size {:.1} vs automizer {:.1} (smaller is the paper's finding)",
        total[col_idx("portfolio")],
        total[col_idx("automizer")]
    );

    // Query-cache perf trajectory: aggregate the ablation pair, report the
    // time-per-round speedup (total and Weaver-only) and persist the first
    // BENCH_qcache.json entry. The identity assertion above already
    // guarantees both sides did the same logical work.
    let seq = &cols[col_idx("seq")].runs;
    let cold = &cols[col_idx("seq-nocache")].runs;
    let on = CacheSide::of(seq);
    let off = CacheSide::of(cold);
    let weaver = |runs: &[Run]| {
        CacheSide::of(
            &runs
                .iter()
                .filter(|r| r.suite == Suite::Weaver)
                .cloned()
                .collect::<Vec<_>>(),
        )
    };
    let (on_w, off_w) = (weaver(seq), weaver(cold));
    let speedup = off.time_per_round() / on.time_per_round();
    let speedup_w = off_w.time_per_round() / on_w.time_per_round();
    println!();
    println!(
        "Query-cache ablation: time/round {} (on) vs {} (off) — {speedup:.2}x, \
         Weaver-only {speedup_w:.2}x, hit rate {:.1}%",
        bench::fmt_time(on.time_per_round()),
        bench::fmt_time(off.time_per_round()),
        on.hit_rate() * 100.0
    );
    let json = format!(
        "{{\n  \"corpus\": \"{}\",\n  \"benchmarks\": {},\n  \"identity\": true,\n  \
         \"speedup_time_per_round\": {speedup:.4},\n  \
         \"speedup_time_per_round_weaver\": {speedup_w:.4},\n  \"configs\": [\n{},\n{},\n{},\n{}\n  ]\n}}\n",
        if std::env::var("SEQVER_QUICK").is_ok() { "quick" } else { "full" },
        seq.len(),
        on.json("gemcutter-seq"),
        off.json("seq-nocache"),
        on_w.json("gemcutter-seq/weaver"),
        off_w.json("seq-nocache/weaver"),
    );
    std::fs::write("BENCH_qcache.json", json).expect("write BENCH_qcache.json");
    println!("wrote BENCH_qcache.json");

    // Solver-engine perf trajectory: CDCL (the `seq` default) vs the
    // legacy DPLL on identical logical work (asserted above), reported as
    // a time-per-round speedup and persisted to BENCH_cdcl.json.
    let dpll_runs = &cols[col_idx("seq-dpll")].runs;
    let cdcl_side = CacheSide::of(seq);
    let dpll_side = CacheSide::of(dpll_runs);
    let (cdcl_w, dpll_w) = (weaver(seq), weaver(dpll_runs));
    let solver_speedup = dpll_side.time_per_round() / cdcl_side.time_per_round();
    let solver_speedup_w = dpll_w.time_per_round() / cdcl_w.time_per_round();
    println!();
    println!(
        "Solver ablation: time/round {} (cdcl) vs {} (dpll) — {solver_speedup:.2}x, \
         Weaver-only {solver_speedup_w:.2}x",
        bench::fmt_time(cdcl_side.time_per_round()),
        bench::fmt_time(dpll_side.time_per_round()),
    );
    let json = format!(
        "{{\n  \"corpus\": \"{}\",\n  \"benchmarks\": {},\n  \"identity\": true,\n  \
         \"speedup_time_per_round\": {solver_speedup:.4},\n  \
         \"speedup_time_per_round_weaver\": {solver_speedup_w:.4},\n  \"configs\": [\n{},\n{},\n{},\n{}\n  ]\n}}\n",
        if std::env::var("SEQVER_QUICK").is_ok() { "quick" } else { "full" },
        seq.len(),
        cdcl_side.json("gemcutter-seq"),
        dpll_side.json("seq-dpll"),
        cdcl_w.json("gemcutter-seq/weaver"),
        dpll_w.json("seq-dpll/weaver"),
    );
    std::fs::write("BENCH_cdcl.json", json).expect("write BENCH_cdcl.json");
    println!("wrote BENCH_cdcl.json");
}
