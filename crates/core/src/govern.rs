//! Resource governance for verification runs: building and installing
//! [`ResourceGovernor`]s, and the give-up taxonomy surfaced in verdicts.
//!
//! The governor primitive lives in [`smt::resource`] (the solver crate is
//! the bottom of the dependency stack and its loops are the hottest charge
//! sites); this module re-exports it and adds the verifier-level
//! configuration: [`GovernorConfig`] describes *relative* limits (a
//! deadline duration, per-category budgets, a fault plan) that
//! [`GovernorConfig::build`] turns into a live governor whose deadline
//! starts counting immediately.
//!
//! Sound degradation invariants (enforced by the charge sites, tested by
//! `tests/fault_soundness.rs`):
//!
//! * unknown commutativity ⇒ treated as **dependent** (reduction shrinks,
//!   never grows);
//! * unknown infeasibility ⇒ the trace is **not refuted** (no spurious
//!   `Incorrect`), and equally never reported feasible (no spurious bug);
//! * unknown Hoare validity ⇒ the assertion is **not used** by the proof;
//! * any tripped governor ⇒ the verdict downgrades to
//!   [`Verdict::GaveUp`](crate::verify::Verdict::GaveUp) — never to
//!   `Correct`.

pub use smt::resource::{
    Category, FaultKind, FaultPlan, FaultSite, GiveUp, GovernorBuilder, ResourceGovernor,
};

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// Relative resource limits for one verification run. `Default` is fully
/// unlimited; [`GovernorConfig::build`] then returns the free
/// [`ResourceGovernor::unlimited`] handle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GovernorConfig {
    /// Wall-clock budget for the whole run (polled inside solver loops and
    /// the proof-check DFS, not just between rounds).
    pub deadline: Option<Duration>,
    /// Total simplex pivots across the run.
    pub simplex_pivot_budget: Option<u64>,
    /// Total DPLL branch decisions across the run.
    pub dpll_decision_budget: Option<u64>,
    /// Total branch-and-bound nodes across the run.
    pub branch_node_budget: Option<u64>,
    /// Total proof-check DFS states across the run.
    pub dfs_state_budget: Option<u64>,
    /// Deterministic fault-injection plan (empty = none).
    pub fault_plan: FaultPlan,
}

impl GovernorConfig {
    /// A config with only a wall-clock deadline.
    pub fn with_deadline(deadline: Duration) -> GovernorConfig {
        GovernorConfig {
            deadline: Some(deadline),
            ..GovernorConfig::default()
        }
    }

    /// `true` when nothing is limited or injected — building would be a
    /// no-op.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.simplex_pivot_budget.is_none()
            && self.dpll_decision_budget.is_none()
            && self.branch_node_budget.is_none()
            && self.dfs_state_budget.is_none()
            && self.fault_plan.is_empty()
    }

    /// Builds a governor; a configured deadline starts counting now.
    pub fn build(&self) -> ResourceGovernor {
        self.builder()
            .map_or_else(ResourceGovernor::unlimited, GovernorBuilder::build)
    }

    /// As [`GovernorConfig::build`], sharing `cancel` as the cooperative
    /// cancellation token (always governed, even if otherwise unlimited,
    /// so the token is actually observed).
    pub fn build_with_cancel(&self, cancel: Arc<AtomicBool>) -> ResourceGovernor {
        self.builder()
            .unwrap_or_default()
            .cancel_token(cancel)
            .build()
    }

    fn builder(&self) -> Option<GovernorBuilder> {
        if self.is_unlimited() {
            return None;
        }
        let mut b = GovernorBuilder::default()
            .deadline_opt(self.deadline)
            .fault_plan(self.fault_plan.clone());
        for (category, budget) in [
            (Category::SimplexPivots, self.simplex_pivot_budget),
            (Category::DpllDecisions, self.dpll_decision_budget),
            (Category::BranchNodes, self.branch_node_budget),
            (Category::DfsStates, self.dfs_state_budget),
        ] {
            if let Some(n) = budget {
                b = b.budget(category, n);
            }
        }
        Some(b)
    }
}

/// Renders a `catch_unwind` payload (used to contain injected panics).
pub fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn unlimited_config_builds_noop_governor() {
        let cfg = GovernorConfig::default();
        assert!(cfg.is_unlimited());
        assert!(!cfg.build().is_governed());
    }

    #[test]
    fn budgets_reach_the_governor() {
        let cfg = GovernorConfig {
            simplex_pivot_budget: Some(3),
            ..GovernorConfig::default()
        };
        let g = cfg.build();
        assert!(g.is_governed());
        for _ in 0..3 {
            assert!(g.charge(Category::SimplexPivots).is_ok());
        }
        assert_eq!(
            g.charge(Category::SimplexPivots).unwrap_err().category,
            Category::SimplexPivots
        );
    }

    #[test]
    fn cancel_token_is_always_governed() {
        let token = Arc::new(AtomicBool::new(false));
        let g = GovernorConfig::default().build_with_cancel(Arc::clone(&token));
        assert!(g.is_governed());
        assert!(g.charge(Category::DfsStates).is_ok());
        token.store(true, Ordering::Relaxed);
        assert_eq!(
            g.charge(Category::DfsStates).unwrap_err().category,
            Category::Cancelled
        );
    }

    #[test]
    fn fault_plan_round_trips_through_config() {
        let cfg = GovernorConfig {
            fault_plan: FaultPlan::parse("rounds:2:unknown").unwrap(),
            ..GovernorConfig::default()
        };
        assert!(!cfg.is_unlimited());
        let g = cfg.build();
        assert!(g.charge(Category::Rounds).is_ok());
        assert_eq!(
            g.charge(Category::Rounds).unwrap_err().category,
            Category::InjectedFault
        );
    }
}
