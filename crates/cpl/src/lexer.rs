//! Tokenizer for CPL.

use crate::Error;
use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// Integer literal.
    Int(i128),
    // Keywords.
    /// `var`
    Var,
    /// `int`
    IntType,
    /// `bool`
    BoolType,
    /// `thread`
    Thread,
    /// `spawn`
    Spawn,
    /// `local`
    Local,
    /// `while`
    While,
    /// `if`
    If,
    /// `else`
    Else,
    /// `atomic`
    Atomic,
    /// `assume`
    Assume,
    /// `assert`
    Assert,
    /// `havoc`
    Havoc,
    /// `skip`
    Skip,
    /// `requires`
    Requires,
    /// `ensures`
    Ensures,
    /// `true`
    True,
    /// `false`
    False,
    // Symbols.
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `:=`
    Assign,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(n) => write!(f, "integer `{n}`"),
            Tok::Var => write!(f, "`var`"),
            Tok::IntType => write!(f, "`int`"),
            Tok::BoolType => write!(f, "`bool`"),
            Tok::Thread => write!(f, "`thread`"),
            Tok::Spawn => write!(f, "`spawn`"),
            Tok::Local => write!(f, "`local`"),
            Tok::While => write!(f, "`while`"),
            Tok::If => write!(f, "`if`"),
            Tok::Else => write!(f, "`else`"),
            Tok::Atomic => write!(f, "`atomic`"),
            Tok::Assume => write!(f, "`assume`"),
            Tok::Assert => write!(f, "`assert`"),
            Tok::Havoc => write!(f, "`havoc`"),
            Tok::Skip => write!(f, "`skip`"),
            Tok::Requires => write!(f, "`requires`"),
            Tok::Ensures => write!(f, "`ensures`"),
            Tok::True => write!(f, "`true`"),
            Tok::False => write!(f, "`false`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Assign => write!(f, "`:=`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::NotEq => write!(f, "`!=`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::AndAnd => write!(f, "`&&`"),
            Tok::OrOr => write!(f, "`||`"),
            Tok::Not => write!(f, "`!`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position (1-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Line.
    pub line: usize,
    /// Column.
    pub col: usize,
}

/// Tokenizes `source`. `//` starts a line comment.
///
/// # Errors
///
/// Returns an [`Error`] on unknown characters or malformed literals.
pub fn tokenize(source: &str) -> Result<Vec<Spanned>, Error> {
    let mut out = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;
    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            out.push(Spanned {
                tok: $tok,
                line,
                col,
            });
            i += $len;
            col += $len;
        }};
    }
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                i += 1;
                col += 1;
            }
            '/' if next == Some('/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '{' => push!(Tok::LBrace, 1),
            '}' => push!(Tok::RBrace, 1),
            '(' => push!(Tok::LParen, 1),
            ')' => push!(Tok::RParen, 1),
            ';' => push!(Tok::Semi, 1),
            '*' => push!(Tok::Star, 1),
            '+' => push!(Tok::Plus, 1),
            '-' => push!(Tok::Minus, 1),
            ':' if next == Some('=') => push!(Tok::Assign, 2),
            ':' => push!(Tok::Colon, 1),
            '=' if next == Some('=') => push!(Tok::EqEq, 2),
            '=' => push!(Tok::Eq, 1),
            '!' if next == Some('=') => push!(Tok::NotEq, 2),
            '!' => push!(Tok::Not, 1),
            '<' if next == Some('=') => push!(Tok::Le, 2),
            '<' => push!(Tok::Lt, 1),
            '>' if next == Some('=') => push!(Tok::Ge, 2),
            '>' => push!(Tok::Gt, 1),
            '&' if next == Some('&') => push!(Tok::AndAnd, 2),
            '|' if next == Some('|') => push!(Tok::OrOr, 2),
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let value: i128 = text.parse().map_err(|_| Error {
                    line,
                    col,
                    message: format!("integer literal `{text}` out of range"),
                })?;
                out.push(Spanned {
                    tok: Tok::Int(value),
                    line,
                    col,
                });
                col += i - start;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let tok = match text.as_str() {
                    "var" => Tok::Var,
                    "int" => Tok::IntType,
                    "bool" => Tok::BoolType,
                    "thread" => Tok::Thread,
                    "spawn" => Tok::Spawn,
                    "local" => Tok::Local,
                    "while" => Tok::While,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "atomic" => Tok::Atomic,
                    "assume" => Tok::Assume,
                    "assert" => Tok::Assert,
                    "havoc" => Tok::Havoc,
                    "skip" => Tok::Skip,
                    "requires" => Tok::Requires,
                    "ensures" => Tok::Ensures,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    _ => Tok::Ident(text),
                };
                out.push(Spanned { tok, line, col });
                col += i - start;
            }
            other => {
                return Err(Error {
                    line,
                    col,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_symbols() {
        assert_eq!(
            toks("var x: int = 3;"),
            vec![
                Tok::Var,
                Tok::Ident("x".into()),
                Tok::Colon,
                Tok::IntType,
                Tok::Eq,
                Tok::Int(3),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("x := a + b - 2 * c"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Ident("a".into()),
                Tok::Plus,
                Tok::Ident("b".into()),
                Tok::Minus,
                Tok::Int(2),
                Tok::Star,
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
        assert_eq!(
            toks("a == b != c <= d >= e < f > g && h || !i"),
            vec![
                Tok::Ident("a".into()),
                Tok::EqEq,
                Tok::Ident("b".into()),
                Tok::NotEq,
                Tok::Ident("c".into()),
                Tok::Le,
                Tok::Ident("d".into()),
                Tok::Ge,
                Tok::Ident("e".into()),
                Tok::Lt,
                Tok::Ident("f".into()),
                Tok::Gt,
                Tok::Ident("g".into()),
                Tok::AndAnd,
                Tok::Ident("h".into()),
                Tok::OrOr,
                Tok::Not,
                Tok::Ident("i".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_and_positions() {
        let ts = tokenize("x // comment\n  y").unwrap();
        assert_eq!(ts[0].tok, Tok::Ident("x".into()));
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!(ts[1].tok, Tok::Ident("y".into()));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn rejects_unknown_chars() {
        let err = tokenize("x @ y").unwrap_err();
        assert!(err.message.contains('@'));
        assert_eq!(err.col, 3);
    }

    #[test]
    fn keywords_are_not_identifiers() {
        assert_eq!(toks("while")[0], Tok::While);
        assert_eq!(toks("whilex")[0], Tok::Ident("whilex".into()));
    }
}
