//! Benchmarks of the explicit reduction constructions (§5–§6): sleep set
//! automaton, π-reduction and the combined `(S⋖(P))↓πS`, on the fully
//! commutative scaling family of Thm. 7.2 — the ablation between the two
//! reduction mechanisms the paper contrasts with model-checking folklore.

use automata::bitset::BitSet;
use automata::dfa::DfaBuilder;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use program::commutativity::{CommutativityLevel, CommutativityOracle};
use program::concurrent::{Program, Spec};
use program::stmt::{SimpleStmt, Statement};
use program::thread::{Thread, ThreadId};
use reduction::order::{LockstepOrder, PreferenceOrder, SeqOrder};
use reduction::reduce::{reduction_automaton, ReductionConfig};
use smt::linear::LinExpr;
use smt::term::TermPool;
use std::hint::black_box;

fn independent(pool: &mut TermPool, n: u32, k: u32) -> Program {
    let mut b = Program::builder("independent");
    for t in 0..n {
        let v = pool.var(&format!("x{t}"));
        b.add_global(v, 0);
        let mut cfg = DfaBuilder::new();
        let mut prev = cfg.add_state(false);
        let entry = prev;
        for s in 0..k {
            let l = b.add_statement(Statement::simple(
                ThreadId(t),
                &format!("t{t}s{s}"),
                SimpleStmt::Assign(v, LinExpr::constant(s as i128)),
                pool,
            ));
            let next = cfg.add_state(s + 1 == k);
            cfg.add_transition(prev, l, next);
            prev = next;
        }
        b.add_thread(Thread::new(
            "t",
            cfg.build(entry),
            BitSet::new(k as usize + 1),
        ));
    }
    b.build(pool)
}

fn build(
    p: &Program,
    pool: &mut TermPool,
    order: &dyn PreferenceOrder,
    use_sleep: bool,
    use_persistent: bool,
) -> usize {
    let mut oracle = CommutativityOracle::new(CommutativityLevel::Syntactic);
    let dfa = reduction_automaton(
        pool,
        p,
        Spec::PrePost,
        order,
        &mut oracle,
        ReductionConfig {
            use_sleep,
            use_persistent,
            max_states: 10_000_000,
        },
    );
    dfa.num_states()
}

fn bench_constructions(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduction");
    g.sample_size(10);
    for &n in &[4u32, 6] {
        g.bench_with_input(BenchmarkId::new("sleep_only", n), &n, |b, &n| {
            b.iter(|| {
                let mut pool = TermPool::new();
                let p = independent(&mut pool, n, 2);
                black_box(build(&p, &mut pool, &SeqOrder::new(), true, false))
            })
        });
        g.bench_with_input(BenchmarkId::new("persistent_only", n), &n, |b, &n| {
            b.iter(|| {
                let mut pool = TermPool::new();
                let p = independent(&mut pool, n, 2);
                black_box(build(&p, &mut pool, &SeqOrder::new(), false, true))
            })
        });
        g.bench_with_input(BenchmarkId::new("combined_seq", n), &n, |b, &n| {
            b.iter(|| {
                let mut pool = TermPool::new();
                let p = independent(&mut pool, n, 2);
                black_box(build(&p, &mut pool, &SeqOrder::new(), true, true))
            })
        });
        g.bench_with_input(BenchmarkId::new("combined_lockstep", n), &n, |b, &n| {
            b.iter(|| {
                let mut pool = TermPool::new();
                let p = independent(&mut pool, n, 2);
                black_box(build(&p, &mut pool, &LockstepOrder::new(), true, true))
            })
        });
        g.bench_with_input(BenchmarkId::new("full_product", n), &n, |b, &n| {
            b.iter(|| {
                let mut pool = TermPool::new();
                let p = independent(&mut pool, n, 2);
                black_box(p.explicit_product(Spec::PrePost).num_states())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_constructions);
criterion_main!(benches);
