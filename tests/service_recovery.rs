//! Crash-recovery battery for the `seqver serve` daemon, run against the
//! real binary as a subprocess: a deterministic `kill -9` at the worst
//! moment (`--crash-after` aborts right after a store flush, before the
//! response is sent) followed by a restart must re-serve the finished
//! prefix warm from the persistent proof store and reproduce the
//! uninterrupted batch's verdicts bit for bit; a corrupted store must
//! degrade to a warned cold start with — again — identical verdicts.

use serve::client::Client;
use serve::proto::{Response, Status, VerifyOpts};
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_seqver");

/// `c <= bound` after `incs` unit increments: correct iff `bound >= incs`.
fn source(incs: u32, bound: u32) -> String {
    format!(
        "var c: int = 0;\n\
         thread inc {{ c := c + 1; }}\n\
         thread chk {{ assert c <= {bound}; }}\n\
         spawn inc * {incs};\n\
         spawn chk;\n"
    )
}

/// A small mixed batch: three definitive-correct programs and one with a
/// deterministic bug (its witness trace is part of the bit-exact verdict
/// line).
fn corpus() -> Vec<String> {
    vec![source(1, 1), source(2, 2), source(1, 0), source(3, 4)]
}

struct Daemon {
    child: Child,
    addr: String,
    stderr_path: PathBuf,
}

impl Daemon {
    fn start(dir: &Path, store: &Path, extra: &[&str]) -> Daemon {
        static N: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let stderr_path = dir.join(format!(
            "daemon-{}.stderr",
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let stderr_file = std::fs::File::create(&stderr_path).expect("stderr file");
        let mut child = Command::new(BIN)
            .arg("serve")
            .arg("--store")
            .arg(store)
            .args(["--request-timeout", "30s"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::from(stderr_file))
            .spawn()
            .expect("spawn daemon");
        // The daemon announces its (port-0-resolved) address on stdout.
        let stdout = child.stdout.take().expect("stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("daemon exited before announcing its address")
                .expect("read stdout");
            if let Some(addr) = line.strip_prefix("listening on ") {
                break addr.trim().to_owned();
            }
        };
        // Keep draining stdout (batch stats lines) so the pipe never fills.
        std::thread::spawn(move || for _ in lines {});
        Daemon {
            child,
            addr,
            stderr_path,
        }
    }

    fn client(&self) -> Client {
        Client::connect_with_timeout(&self.addr, Duration::from_secs(120)).expect("connect")
    }

    /// Asks the daemon to drain, then expects a clean exit 0.
    fn shutdown_cleanly(mut self) -> String {
        self.client().shutdown().expect("shutdown ack");
        let status = self.child.wait().expect("wait");
        assert!(status.success(), "daemon exited uncleanly: {status}");
        let mut stderr = String::new();
        std::fs::File::open(&self.stderr_path)
            .expect("stderr file")
            .read_to_string(&mut stderr)
            .expect("read stderr");
        stderr
    }

    /// Waits for the daemon to die on its own (the `--crash-after` abort).
    fn wait_for_crash(mut self) {
        let status = self.child.wait().expect("wait");
        assert!(
            !status.success(),
            "daemon with --crash-after exited cleanly instead of aborting"
        );
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seqver-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Submits the whole corpus over one connection, returning each response.
/// Stops early if the daemon dies mid-batch (the crash runs).
fn submit_batch(client: &mut Client, programs: &[String]) -> Vec<Result<Response, String>> {
    let mut out = Vec::new();
    for (i, program) in programs.iter().enumerate() {
        let result = client.verify_source(&format!("req-{i}"), program, VerifyOpts::default());
        let died = result.is_err();
        out.push(result);
        if died {
            break;
        }
    }
    out
}

fn verdict_lines(responses: &[Result<Response, String>]) -> Vec<String> {
    responses
        .iter()
        .map(|r| r.as_ref().expect("response").verdict_line())
        .collect()
}

fn stat(client: &mut Client, key: &str) -> u64 {
    let stats = client.stats().expect("stats");
    stats
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("no stat `{key}` in {stats:?}"))
        .1
        .parse()
        .expect("numeric stat")
}

/// No response may ever carry evidence of an uncontained failure.
fn assert_no_panic_observed(responses: &[Result<Response, String>]) {
    for r in responses.iter().flatten() {
        assert!(
            !r.reason.as_deref().unwrap_or("").contains("panic"),
            "a request observed a panic: {r:?}"
        );
    }
}

#[test]
fn crash_mid_batch_then_restart_reproduces_the_batch_warm() {
    let dir = scratch_dir("crash");
    let programs = corpus();

    // Reference: one uninterrupted daemon serves the whole batch cold.
    let reference_store = dir.join("reference.store");
    let daemon = Daemon::start(&dir, &reference_store, &[]);
    let mut client = daemon.client();
    let reference = submit_batch(&mut client, &programs);
    let reference_lines = verdict_lines(&reference);
    assert_no_panic_observed(&reference);
    assert_eq!(reference_lines.len(), programs.len());
    assert!(
        reference_lines.iter().any(|l| l == "CORRECT"),
        "{reference_lines:?}"
    );
    assert!(
        reference_lines
            .iter()
            .any(|l| l.starts_with("INCORRECT trace=")),
        "{reference_lines:?}"
    );
    assert_eq!(stat(&mut client, "store-hits"), 0, "reference ran cold");
    drop(client);
    daemon.shutdown_cleanly();

    // Crash run: a fresh store, and an abort() immediately after the 2nd
    // verification's store flush — the work is on disk, the response was
    // never sent. The client observes a dead connection, not a panic.
    let store = dir.join("proofs.store");
    let daemon = Daemon::start(&dir, &store, &["--crash-after", "2"]);
    let mut client = daemon.client();
    let interrupted = submit_batch(&mut client, &programs);
    drop(client);
    daemon.wait_for_crash();
    assert!(
        interrupted.last().expect("at least one request").is_err(),
        "the crash must surface as a dead connection mid-batch"
    );
    let served: Vec<&Response> = interrupted.iter().flatten().collect();
    assert!(
        served.len() < programs.len(),
        "batch must have been cut short"
    );
    for (i, resp) in served.iter().enumerate() {
        assert_eq!(resp.verdict_line(), reference_lines[i], "pre-crash prefix");
    }
    assert!(store.exists(), "the store must have survived the abort");

    // Restart on the same store and resubmit everything: bit-identical
    // verdicts, with the persisted prefix served warm from the store.
    let daemon = Daemon::start(&dir, &store, &[]);
    let mut client = daemon.client();
    let recovered = submit_batch(&mut client, &programs);
    assert_no_panic_observed(&recovered);
    assert_eq!(verdict_lines(&recovered), reference_lines);
    let hits = stat(&mut client, "store-hits");
    assert!(
        hits >= 2,
        "both persisted pre-crash verdicts must be store hits, got {hits}"
    );
    for resp in recovered.iter().flatten().take(2) {
        assert!(
            resp.store_hit,
            "pre-crash prefix must be served from the store"
        );
    }
    drop(client);
    daemon.shutdown_cleanly();

    // One more restart: now the *whole* batch is warm.
    let daemon = Daemon::start(&dir, &store, &[]);
    let mut client = daemon.client();
    let warm = submit_batch(&mut client, &programs);
    assert_eq!(verdict_lines(&warm), reference_lines);
    assert_eq!(stat(&mut client, "store-hits"), programs.len() as u64);
    drop(client);
    daemon.shutdown_cleanly();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_store_cold_starts_with_a_warning_and_identical_verdicts() {
    let dir = scratch_dir("corrupt");
    let programs = corpus();
    let store = dir.join("proofs.store");

    // Build a fully populated store, then record the cold verdicts.
    let daemon = Daemon::start(&dir, &store, &[]);
    let mut client = daemon.client();
    let reference = submit_batch(&mut client, &programs);
    let reference_lines = verdict_lines(&reference);
    drop(client);
    daemon.shutdown_cleanly();

    // Damage it: chop off the tail, taking the completeness marker with
    // it — the shape a torn non-atomic writer would leave.
    let text = std::fs::read_to_string(&store).expect("read store");
    assert!(text.len() > 16);
    std::fs::write(&store, &text[..text.len() - 8]).expect("truncate store");

    // The daemon must come up anyway, warn the operator, and verify the
    // whole batch from scratch to the same verdicts.
    let daemon = Daemon::start(&dir, &store, &[]);
    let mut client = daemon.client();
    let recovered = submit_batch(&mut client, &programs);
    assert_no_panic_observed(&recovered);
    assert_eq!(verdict_lines(&recovered), reference_lines);
    assert_eq!(
        stat(&mut client, "store-hits"),
        0,
        "cold start after corruption"
    );
    drop(client);
    let stderr = daemon.shutdown_cleanly();
    assert!(
        stderr.contains("warning") || stderr.contains("cold"),
        "operator must be told about the cold start; stderr was: {stderr}"
    );

    // The rebuilt store is whole again: a final restart serves warm.
    let daemon = Daemon::start(&dir, &store, &[]);
    let mut client = daemon.client();
    let warm = submit_batch(&mut client, &programs);
    assert_eq!(verdict_lines(&warm), reference_lines);
    assert_eq!(stat(&mut client, "store-hits"), programs.len() as u64);
    drop(client);
    daemon.shutdown_cleanly();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn busy_responses_guide_a_full_batch_through_an_overloaded_daemon() {
    let dir = scratch_dir("shed");
    let store = dir.join("proofs.store");
    // A single worker with no queue: concurrent clients must be shed with
    // `busy` + a retry hint, and following the hint must still get every
    // request served eventually.
    let daemon = Daemon::start(&dir, &store, &["--max-inflight", "1", "--queue-depth", "0"]);
    let addr = daemon.addr.clone();
    let mut threads = Vec::new();
    for t in 0u32..4 {
        let addr = addr.clone();
        threads.push(std::thread::spawn(move || {
            let mut client =
                Client::connect_with_timeout(&addr, Duration::from_secs(120)).expect("connect");
            let mut busy = 0u64;
            for r in 0u32..3 {
                let program = source(1, 10 + t * 10 + r);
                loop {
                    let resp = client
                        .verify_source(&format!("shed-{t}-{r}"), &program, VerifyOpts::default())
                        .expect("response");
                    if resp.status == Some(Status::Busy) {
                        busy += 1;
                        std::thread::sleep(Duration::from_millis(
                            resp.retry_after_ms.expect("hint"),
                        ));
                        continue;
                    }
                    assert_eq!(resp.status, Some(Status::Ok));
                    break;
                }
            }
            busy
        }));
    }
    let busy_total: u64 = threads.into_iter().map(|t| t.join().expect("thread")).sum();
    assert!(busy_total >= 1, "overload never shed a single request");
    daemon.shutdown_cleanly();
    let _ = std::fs::remove_dir_all(&dir);
}
