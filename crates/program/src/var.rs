//! SSA version tracking for program variables.
//!
//! Trace encodings and statement relations need fresh "versions" of program
//! variables. A [`Versions`] map starts as the identity (version 0 of `x`
//! is `x` itself) and mints fresh pool variables on demand.

use smt::linear::VarId;
use smt::term::TermPool;
use std::collections::HashMap;

/// Tracks the current SSA version of each program variable.
///
/// # Example
///
/// ```
/// use smt::term::TermPool;
/// use program::var::Versions;
///
/// let mut pool = TermPool::new();
/// let x = pool.var("x");
/// let mut v = Versions::new();
/// assert_eq!(v.current(x), x);
/// let x1 = v.bump(&mut pool, x);
/// assert_ne!(x1, x);
/// assert_eq!(v.current(x), x1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Versions {
    current: HashMap<VarId, VarId>,
}

impl Versions {
    /// The identity version map.
    pub fn new() -> Versions {
        Versions::default()
    }

    /// The current version of `v` (initially `v` itself).
    pub fn current(&self, v: VarId) -> VarId {
        self.current.get(&v).copied().unwrap_or(v)
    }

    /// Mints a fresh version for `v`, makes it current, and returns it.
    pub fn bump(&mut self, pool: &mut TermPool, v: VarId) -> VarId {
        let base = pool.var_name(v).to_owned();
        let fresh = pool.fresh_var(&base);
        self.current.insert(v, fresh);
        fresh
    }

    /// The program variables that have been bumped at least once, with
    /// their current versions.
    pub fn bumped(&self) -> impl Iterator<Item = (VarId, VarId)> + '_ {
        self.current.iter().map(|(&v, &c)| (v, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_until_bumped() {
        let mut pool = TermPool::new();
        let x = pool.var("x");
        let y = pool.var("y");
        let mut v = Versions::new();
        assert_eq!(v.current(x), x);
        let x1 = v.bump(&mut pool, x);
        let x2 = v.bump(&mut pool, x);
        assert_ne!(x1, x2);
        assert_eq!(v.current(x), x2);
        assert_eq!(v.current(y), y);
        assert_eq!(v.bumped().count(), 1);
    }

    #[test]
    fn fresh_names_derive_from_base() {
        let mut pool = TermPool::new();
        let x = pool.var("pendingIo");
        let mut v = Versions::new();
        let x1 = v.bump(&mut pool, x);
        assert!(pool.var_name(x1).starts_with("pendingIo#"));
    }
}
