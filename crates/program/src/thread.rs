//! Threads as control-flow DFAs over the global statement alphabet.
//!
//! Per §3 of the paper, a thread is a DFA whose states are control
//! locations, with a distinguished entry (initial state) and exit (the only
//! accepting state). For `assert`-style specifications threads additionally
//! carry *error locations*: locations reached by the failing branch of an
//! assert, with no outgoing edges.

use automata::bitset::BitSet;
use automata::dfa::{Dfa, StateId};
use std::fmt;

/// Index of a thread within a program.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The thread index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Index of a statement in the program's global alphabet.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LetterId(pub u32);

impl LetterId {
    /// The letter index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for LetterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for LetterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A thread: a named control-flow DFA with optional error locations.
///
/// The DFA's initial state is the entry location `ℓ_init`; its accepting
/// states are the exit location(s).
#[derive(Clone, Debug)]
pub struct Thread {
    name: String,
    cfg: Dfa<LetterId>,
    error_locations: BitSet,
}

impl Thread {
    /// Wraps a control-flow DFA as a thread.
    ///
    /// # Panics
    ///
    /// Panics if an error location has outgoing edges.
    pub fn new(name: &str, cfg: Dfa<LetterId>, error_locations: BitSet) -> Thread {
        for loc in error_locations.iter() {
            assert_eq!(
                cfg.enabled(StateId(loc as u32)).count(),
                0,
                "error locations must be terminal"
            );
        }
        Thread {
            name: name.to_owned(),
            cfg,
            error_locations,
        }
    }

    /// The thread's name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The control-flow DFA.
    pub fn cfg(&self) -> &Dfa<LetterId> {
        &self.cfg
    }

    /// The entry location.
    pub fn entry(&self) -> StateId {
        self.cfg.initial()
    }

    /// Whether `loc` is an exit location.
    pub fn is_exit(&self, loc: StateId) -> bool {
        self.cfg.is_accepting(loc)
    }

    /// Whether `loc` is an error location.
    pub fn is_error(&self, loc: StateId) -> bool {
        self.error_locations.contains(loc.index())
    }

    /// Whether the thread has any error location (i.e. contains asserts).
    pub fn has_error_locations(&self) -> bool {
        !self.error_locations.is_empty()
    }

    /// Number of control locations — the thread's size `|Ti|` (§3).
    pub fn size(&self) -> usize {
        self.cfg.num_states()
    }

    /// The letters labelling this thread's edges, sorted.
    pub fn letters(&self) -> Vec<LetterId> {
        self.cfg.alphabet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::dfa::DfaBuilder;

    #[test]
    fn thread_wraps_cfg() {
        let mut b = DfaBuilder::new();
        let entry = b.add_state(false);
        let exit = b.add_state(true);
        let err = b.add_state(false);
        b.add_transition(entry, LetterId(0), exit);
        b.add_transition(entry, LetterId(1), err);
        let mut errors = BitSet::new(3);
        errors.insert(err.index());
        let t = Thread::new("worker", b.build(entry), errors);
        assert_eq!(t.name(), "worker");
        assert_eq!(t.size(), 3);
        assert!(t.is_exit(exit));
        assert!(t.is_error(err));
        assert!(!t.is_error(entry));
        assert!(t.has_error_locations());
        assert_eq!(t.letters(), vec![LetterId(0), LetterId(1)]);
    }

    #[test]
    #[should_panic(expected = "error locations must be terminal")]
    fn error_location_with_edges_panics() {
        let mut b = DfaBuilder::new();
        let entry = b.add_state(false);
        let exit = b.add_state(true);
        b.add_transition(entry, LetterId(0), exit);
        let mut errors = BitSet::new(2);
        errors.insert(entry.index());
        let _ = Thread::new("bad", b.build(entry), errors);
    }
}
