//! DFA minimization by partition refinement (Moore's algorithm).
//!
//! Used by the experiments that measure the *optimal* size of a reduction's
//! finite representation (§4.1 of the paper compares reduction DFA sizes;
//! minimizing first makes the comparison independent of construction
//! artifacts such as duplicated sleep-set states).

use crate::dfa::{Dfa, DfaBuilder, StateId};
use std::collections::HashMap;
use std::hash::Hash;

/// Returns the minimal DFA recognizing the same language as `dfa`.
///
/// The input is trimmed first (unreachable and non-co-reachable states
/// removed); a partial transition function is preserved — the minimal
/// automaton has no rejecting sink unless the language is empty, in which
/// case a single dead initial state is returned.
///
/// # Example
///
/// ```
/// use automata::dfa::DfaBuilder;
/// use automata::minimize::minimize;
///
/// // Two redundant accepting states recognizing a(a|b)* in a roundabout way.
/// let mut b = DfaBuilder::new();
/// let q0 = b.add_state(false);
/// let q1 = b.add_state(true);
/// let q2 = b.add_state(true);
/// b.add_transition(q0, 'a', q1);
/// b.add_transition(q1, 'a', q2);
/// b.add_transition(q1, 'b', q2);
/// b.add_transition(q2, 'a', q1);
/// b.add_transition(q2, 'b', q1);
/// let m = minimize(&b.build(q0));
/// assert_eq!(m.num_states(), 2);
/// ```
#[allow(clippy::needless_range_loop, clippy::type_complexity)] // partition refinement over state indices
pub fn minimize<L: Copy + Eq + Ord + Hash>(dfa: &Dfa<L>) -> Dfa<L> {
    let dfa = dfa.trim();
    if dfa.is_empty() {
        return dfa;
    }
    let n = dfa.num_states();
    let alphabet = dfa.alphabet();

    // block[q] = current partition block of state q.
    // Start from the accepting / non-accepting split.
    let mut block: Vec<usize> = (0..n)
        .map(|i| usize::from(dfa.is_accepting(StateId(i as u32))))
        .collect();
    let mut num_blocks = 2;
    // The initial split may be degenerate (all accepting after trimming is
    // impossible unless every state accepts).
    if block.iter().all(|&b| b == block[0]) {
        for b in block.iter_mut() {
            *b = 0;
        }
        num_blocks = 1;
    }

    loop {
        // Signature of q: (block, [(letter, successor block or None)]).
        let mut signatures: HashMap<(usize, Vec<(L, Option<usize>)>), usize> = HashMap::new();
        let mut new_block = vec![0usize; n];
        let mut next_id = 0usize;
        for q in 0..n {
            let sig: Vec<(L, Option<usize>)> = alphabet
                .iter()
                .map(|&l| (l, dfa.step(StateId(q as u32), l).map(|t| block[t.index()])))
                .collect();
            let key = (block[q], sig);
            let id = *signatures.entry(key).or_insert_with(|| {
                let id = next_id;
                next_id += 1;
                id
            });
            new_block[q] = id;
        }
        let stable = next_id == num_blocks;
        num_blocks = next_id;
        block = new_block;
        if stable {
            break;
        }
    }

    // Build the quotient automaton.
    let mut builder = DfaBuilder::new();
    let mut block_state: Vec<Option<StateId>> = vec![None; num_blocks];
    for q in 0..n {
        let b = block[q];
        if block_state[b].is_none() {
            block_state[b] = Some(builder.add_state(dfa.is_accepting(StateId(q as u32))));
        }
    }
    let mut added: HashMap<(usize, L), usize> = HashMap::new();
    for q in 0..n {
        let from = block[q];
        for (l, t) in dfa.edges(StateId(q as u32)) {
            let to = block[t.index()];
            match added.insert((from, l), to) {
                None => builder.add_transition(
                    block_state[from].expect("block materialized"),
                    l,
                    block_state[to].expect("block materialized"),
                ),
                Some(prev) => debug_assert_eq!(prev, to, "quotient must be deterministic"),
            }
        }
    }
    builder.build(block_state[block[dfa.initial().index()]].expect("initial block"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::bounded_equal;
    use crate::ops::are_equivalent;

    fn mod3_a() -> Dfa<char> {
        // number of a's ≡ 0 (mod 3), with deliberately duplicated states.
        let mut b = DfaBuilder::new();
        let states: Vec<_> = (0..6).map(|i| b.add_state(i % 3 == 0)).collect();
        for i in 0..6 {
            b.add_transition(states[i], 'a', states[(i + 1) % 6]);
            b.add_transition(states[i], 'b', states[i]);
        }
        b.build(states[0])
    }

    #[test]
    fn collapses_duplicated_cycle() {
        let d = mod3_a();
        let m = minimize(&d);
        assert_eq!(m.num_states(), 3);
        assert!(are_equivalent(&d, &m));
        assert!(bounded_equal(&d, &m, 7));
    }

    #[test]
    fn minimization_is_idempotent() {
        let m = minimize(&mod3_a());
        let mm = minimize(&m);
        assert_eq!(m.num_states(), mm.num_states());
        assert!(are_equivalent(&m, &mm));
    }

    #[test]
    fn empty_language_minimizes_to_dead_state() {
        let mut b = DfaBuilder::new();
        let q0 = b.add_state(false);
        let q1 = b.add_state(false);
        b.add_transition(q0, 'a', q1);
        let m = minimize(&b.build(q0));
        assert_eq!(m.num_states(), 1);
        assert!(m.is_empty());
    }

    #[test]
    fn all_accepting_single_state() {
        // (a|b)* with redundant states.
        let mut b = DfaBuilder::new();
        let q0 = b.add_state(true);
        let q1 = b.add_state(true);
        b.add_transition(q0, 'a', q1);
        b.add_transition(q0, 'b', q0);
        b.add_transition(q1, 'a', q0);
        b.add_transition(q1, 'b', q1);
        let m = minimize(&b.build(q0));
        assert_eq!(m.num_states(), 1);
        assert!(m.accepts("abba".chars()));
    }

    #[test]
    fn partial_transitions_preserved() {
        // Language {ab}: minimal partial DFA has 3 states, no sink.
        let mut b = DfaBuilder::new();
        let q0 = b.add_state(false);
        let q1 = b.add_state(false);
        let q2 = b.add_state(true);
        b.add_transition(q0, 'a', q1);
        b.add_transition(q1, 'b', q2);
        let m = minimize(&b.build(q0));
        assert_eq!(m.num_states(), 3);
        assert!(m.accepts("ab".chars()));
        assert!(!m.accepts("abb".chars()));
    }
}
