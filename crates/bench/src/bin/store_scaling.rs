//! **Proof-store scaling study**: the per-verdict durability cost of the
//! write-ahead journal against the rewrite-everything baseline it
//! replaced, at a store already holding 1k records — exactly the regime
//! the rewrite design degraded in, since every persisted verdict paid a
//! full durable rewrite of the whole snapshot.
//!
//! Two measurements:
//!
//! 1. **Flush cost** — appending a batch of fresh records to a 1k-record
//!    store. Rewrite mode pays its real per-record price (whole-snapshot
//!    atomic durable write each time). Journal mode pays its real
//!    per-record price under load: frames staged per record, one group
//!    commit (a single fsync) per admission drain of `GROUP` requests,
//!    which is what the daemon's commit leader does when workers pile up.
//! 2. **Identity** — the same corpus served by a journal-mode daemon and
//!    a `--no-journal` daemon must produce bit-identical verdict lines;
//!    the journal is a performance change, never a semantic one.
//!
//! Results go to `BENCH_store.json` (CI gates on `.speedup >= 10` and
//! `.identity == true`).
//!
//! Run: `cargo run --release -p bench --bin store_scaling`
//! (`SEQVER_QUICK=1` shrinks the batch, as everywhere in the harness.)

use serve::client::Client;
use serve::proto::{Status, VerifyOpts};
use serve::server::{ServeConfig, Server};
use serve::store::{PersistMode, ProofStore, SharedStore, StoreRecord, StoredVerdict};
use smt::linear::Rel;
use smt::transfer::ExportedTerm;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Requests sharing one group-commit fsync — the daemon's admission drain
/// under its default `max_inflight + queue_depth` load.
const GROUP: usize = 8;

/// A representative persisted verdict: a definitive result plus a few
/// harvested assertions (what makes snapshot records non-trivially wide).
fn record(i: u64) -> StoreRecord {
    let atom = |k: i128| ExportedTerm::Atom {
        coeffs: vec![("c".to_owned(), 1)],
        constant: -k,
        rel: Rel::Le0,
    };
    StoreRecord {
        fingerprint: 0x5eed_0000_0000_0000 | i,
        name: format!("bench-{}", i % 97),
        verdict: if i.is_multiple_of(5) {
            StoredVerdict::Incorrect(vec![1, 2, 3])
        } else {
            StoredVerdict::Correct
        },
        rounds: 3 + i % 7,
        assertions: vec![
            atom(i as i128 % 11),
            atom(i as i128 % 13),
            ExportedTerm::True,
        ],
        certificate: None,
    }
}

/// Opens a store holding `base` records, durably folded into the snapshot.
fn populated(path: &Path, mode: PersistMode, base: u64) -> ProofStore {
    let (mut store, warnings) = ProofStore::open_with(path, mode, Arc::default());
    assert!(warnings.is_empty(), "{warnings:?}");
    for i in 0..base {
        store.insert(record(i));
    }
    store.flush().expect("fold base records");
    store
}

/// Time appending `extra` records in rewrite mode: each append *is* a
/// durable whole-snapshot rewrite — the pre-journal daemon's behavior.
fn bench_rewrite(dir: &Path, base: u64, extra: u64) -> f64 {
    let path = dir.join("rewrite.store");
    let mut store = populated(&path, PersistMode::Rewrite, base);
    let start = Instant::now();
    for i in 0..extra {
        store.append(record(base + i)).expect("rewrite append");
    }
    start.elapsed().as_secs_f64()
}

/// Time appending `extra` records in journal mode: frames staged per
/// record, one group commit (one fsync) per `GROUP` of them.
fn bench_journal(dir: &Path, base: u64, extra: u64) -> (f64, u64) {
    let path = dir.join("journal.store");
    let shared = SharedStore::new(populated(&path, PersistMode::Journal, base));
    let start = Instant::now();
    let mut i = 0;
    while i < extra {
        let mut last_seq = 0;
        for _ in 0..GROUP.min((extra - i) as usize) {
            last_seq = shared
                .lock()
                .append(record(base + i))
                .expect("journal append");
            i += 1;
        }
        shared.commit(last_seq).expect("group commit");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let fsyncs = shared.lock().stats().fsyncs;
    // Appended records must actually be on disk: reopen and count.
    drop(shared);
    let (reopened, _warnings) = ProofStore::open(&path);
    assert_eq!(
        reopened.len() as u64,
        base + extra,
        "journal run lost records"
    );
    (elapsed, fsyncs)
}

/// Serves `programs` through one daemon lifetime with the journal on or
/// off, returning the verdict lines.
fn serve_corpus(store: &Path, journal: bool, programs: &[String]) -> Vec<String> {
    let server = Server::bind(ServeConfig {
        store_path: Some(store.to_path_buf()),
        journal,
        request_timeout: Duration::from_secs(120),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let shutdown = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run());
    let mut client =
        Client::connect_with_timeout(&addr, Duration::from_secs(300)).expect("connect");
    let mut lines = Vec::new();
    for (i, program) in programs.iter().enumerate() {
        let resp = client
            .verify_source(&format!("prog-{i}"), program, VerifyOpts::default())
            .expect("response");
        assert_eq!(resp.status, Some(Status::Ok), "{:?}", resp.reason);
        lines.push(resp.verdict_line());
    }
    let _ = client.shutdown();
    drop(client);
    shutdown.store(true, Ordering::Relaxed);
    handle.join().expect("server thread").expect("clean drain");
    lines
}

fn identity_corpus() -> Vec<String> {
    let source = |incs: u32, bound: u32| {
        format!(
            "var c: int = 0;\n\
             thread inc {{ c := c + 1; }}\n\
             thread chk {{ assert c <= {bound}; }}\n\
             spawn inc * {incs};\n\
             spawn chk;\n"
        )
    };
    vec![
        source(1, 1),
        source(2, 2),
        source(1, 0),
        source(3, 4),
        source(2, 1),
        source(4, 4),
    ]
}

fn main() {
    let quick = std::env::var("SEQVER_QUICK").is_ok();
    let base: u64 = 1000;
    let extra: u64 = if quick { 32 } else { 128 };
    let dir = std::env::temp_dir().join(format!("seqver-store-scaling-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    println!("proof-store scaling study ({base} base records, {extra} appends)");
    let rewrite_s = bench_rewrite(&dir, base, extra);
    let (journal_s, fsyncs) = bench_journal(&dir, base, extra);
    let speedup = if journal_s > 0.0 {
        rewrite_s / journal_s
    } else {
        f64::NAN
    };
    println!(
        "  rewrite: {:.1} ms/record   journal: {:.3} ms/record ({} fsyncs)   speedup {speedup:.1}x",
        rewrite_s * 1000.0 / extra as f64,
        journal_s * 1000.0 / extra as f64,
        fsyncs,
    );

    let programs = identity_corpus();
    let with_journal = serve_corpus(&dir.join("ident-journal.store"), true, &programs);
    let without = serve_corpus(&dir.join("ident-rewrite.store"), false, &programs);
    let identity = with_journal == without;
    println!(
        "  identity (journal on vs off, {} programs): {identity}",
        programs.len()
    );
    assert!(
        identity,
        "the journal changed a verdict: {with_journal:?} vs {without:?}"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"base_records\": {base},\n"));
    json.push_str(&format!("  \"appended\": {extra},\n"));
    json.push_str(&format!("  \"group_commit\": {GROUP},\n"));
    json.push_str(&format!("  \"rewrite_time_s\": {rewrite_s:.6},\n"));
    json.push_str(&format!("  \"journal_time_s\": {journal_s:.6},\n"));
    json.push_str(&format!("  \"journal_fsyncs\": {fsyncs},\n"));
    json.push_str(&format!("  \"speedup\": {speedup:.4},\n"));
    json.push_str(&format!("  \"identity\": {identity}\n"));
    json.push_str("}\n");
    let mut f = std::fs::File::create("BENCH_store.json").expect("create BENCH_store.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_store.json");
    println!("  wrote BENCH_store.json");
    let _ = std::fs::remove_dir_all(&dir);
}
