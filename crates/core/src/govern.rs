//! Resource governance for verification runs: building and installing
//! [`ResourceGovernor`]s, and the give-up taxonomy surfaced in verdicts.
//!
//! The governor primitive lives in [`smt::resource`] (the solver crate is
//! the bottom of the dependency stack and its loops are the hottest charge
//! sites); this module re-exports it and adds the verifier-level
//! configuration: [`GovernorConfig`] describes *relative* limits (a
//! deadline duration, per-category budgets, a fault plan) that
//! [`GovernorConfig::build`] turns into a live governor whose deadline
//! starts counting immediately.
//!
//! Sound degradation invariants (enforced by the charge sites, tested by
//! `tests/fault_soundness.rs`):
//!
//! * unknown commutativity ⇒ treated as **dependent** (reduction shrinks,
//!   never grows);
//! * unknown infeasibility ⇒ the trace is **not refuted** (no spurious
//!   `Incorrect`), and equally never reported feasible (no spurious bug);
//! * unknown Hoare validity ⇒ the assertion is **not used** by the proof;
//! * any tripped governor ⇒ the verdict downgrades to
//!   [`Verdict::GaveUp`](crate::verify::Verdict::GaveUp) — never to
//!   `Correct`.

pub use smt::resource::{
    Category, FaultKind, FaultPlan, FaultSite, GiveUp, GovernorBuilder, ResourceGovernor,
};

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// Relative resource limits for one verification run. `Default` is fully
/// unlimited; [`GovernorConfig::build`] then returns the free
/// [`ResourceGovernor::unlimited`] handle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GovernorConfig {
    /// Wall-clock budget for the whole run (polled inside solver loops and
    /// the proof-check DFS, not just between rounds).
    pub deadline: Option<Duration>,
    /// Total simplex pivots across the run.
    pub simplex_pivot_budget: Option<u64>,
    /// Total DPLL/CDCL branch decisions across the run.
    pub dpll_decision_budget: Option<u64>,
    /// Total CDCL conflict analyses across the run.
    pub cdcl_conflict_budget: Option<u64>,
    /// Total branch-and-bound nodes across the run.
    pub branch_node_budget: Option<u64>,
    /// Total proof-check DFS states across the run.
    pub dfs_state_budget: Option<u64>,
    /// Deterministic fault-injection plan (empty = none).
    pub fault_plan: FaultPlan,
}

impl GovernorConfig {
    /// A config with only a wall-clock deadline.
    pub fn with_deadline(deadline: Duration) -> GovernorConfig {
        GovernorConfig {
            deadline: Some(deadline),
            ..GovernorConfig::default()
        }
    }

    /// `true` when nothing is limited or injected — building would be a
    /// no-op.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.simplex_pivot_budget.is_none()
            && self.dpll_decision_budget.is_none()
            && self.cdcl_conflict_budget.is_none()
            && self.branch_node_budget.is_none()
            && self.dfs_state_budget.is_none()
            && self.fault_plan.is_empty()
    }

    /// Builds a governor; a configured deadline starts counting now.
    pub fn build(&self) -> ResourceGovernor {
        self.builder()
            .map_or_else(ResourceGovernor::unlimited, GovernorBuilder::build)
    }

    /// As [`GovernorConfig::build`], sharing `cancel` as the cooperative
    /// cancellation token (always governed, even if otherwise unlimited,
    /// so the token is actually observed).
    pub fn build_with_cancel(&self, cancel: Arc<AtomicBool>) -> ResourceGovernor {
        self.builder()
            .unwrap_or_default()
            .cancel_token(cancel)
            .build()
    }

    /// The config after `attempt` escalation steps of the supervisor's
    /// retry ladder: the deadline stretches by `deadline_factor^attempt`
    /// and every configured step budget by `step_factor^attempt`
    /// (saturating). The fault plan is dropped on retries (`attempt > 0`):
    /// injected faults model the crash that *caused* the restart, so a
    /// recovery attempt runs clean — otherwise the same charge index would
    /// re-fire the same fault forever and no ladder could ever converge.
    pub fn escalated(
        &self,
        attempt: u32,
        deadline_factor: u32,
        step_factor: u32,
    ) -> GovernorConfig {
        let stretch_time =
            |d: Duration| d.saturating_mul(deadline_factor.saturating_pow(attempt).max(1));
        let stretch_steps =
            |n: u64| n.saturating_mul(u64::from(step_factor.saturating_pow(attempt).max(1)));
        GovernorConfig {
            deadline: self.deadline.map(stretch_time),
            simplex_pivot_budget: self.simplex_pivot_budget.map(stretch_steps),
            dpll_decision_budget: self.dpll_decision_budget.map(stretch_steps),
            cdcl_conflict_budget: self.cdcl_conflict_budget.map(stretch_steps),
            branch_node_budget: self.branch_node_budget.map(stretch_steps),
            dfs_state_budget: self.dfs_state_budget.map(stretch_steps),
            fault_plan: if attempt == 0 {
                self.fault_plan.clone()
            } else {
                FaultPlan::new()
            },
        }
    }

    fn builder(&self) -> Option<GovernorBuilder> {
        if self.is_unlimited() {
            return None;
        }
        let mut b = GovernorBuilder::default()
            .deadline_opt(self.deadline)
            .fault_plan(self.fault_plan.clone());
        for (category, budget) in [
            (Category::SimplexPivots, self.simplex_pivot_budget),
            (Category::DpllDecisions, self.dpll_decision_budget),
            (Category::CdclConflicts, self.cdcl_conflict_budget),
            (Category::BranchNodes, self.branch_node_budget),
            (Category::DfsStates, self.dfs_state_budget),
        ] {
            if let Some(n) = budget {
                b = b.budget(category, n);
            }
        }
        Some(b)
    }
}

/// A give-up attributed to the engine (configuration) that produced it —
/// the unit of the supervisor's give-up history. The supervisor dedupes
/// history entries by `(engine, category)` so an escalated retry that
/// trips over the same root cause again is not double-reported.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttributedGiveUp {
    /// Name of the engine/configuration that gave up.
    pub engine: String,
    /// The give-up record.
    pub give_up: GiveUp,
}

impl AttributedGiveUp {
    /// Creates an attributed give-up.
    pub fn new(engine: impl Into<String>, give_up: GiveUp) -> AttributedGiveUp {
        AttributedGiveUp {
            engine: engine.into(),
            give_up,
        }
    }

    /// The dedupe key: two records with the same key describe the same
    /// root cause observed twice.
    pub fn key(&self) -> (&str, Category) {
        (&self.engine, self.give_up.category)
    }
}

/// Appends `entry` to `history` unless an entry with the same
/// `(engine, category)` key is already present (satellite of the retry
/// ladder: escalated attempts must not double-report one root cause).
pub fn push_give_up_deduped(history: &mut Vec<AttributedGiveUp>, entry: AttributedGiveUp) -> bool {
    if history.iter().any(|e| e.key() == entry.key()) {
        return false;
    }
    history.push(entry);
    true
}

/// Renders a `catch_unwind` payload (used to contain injected panics).
pub fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn unlimited_config_builds_noop_governor() {
        let cfg = GovernorConfig::default();
        assert!(cfg.is_unlimited());
        assert!(!cfg.build().is_governed());
    }

    #[test]
    fn budgets_reach_the_governor() {
        let cfg = GovernorConfig {
            simplex_pivot_budget: Some(3),
            ..GovernorConfig::default()
        };
        let g = cfg.build();
        assert!(g.is_governed());
        for _ in 0..3 {
            assert!(g.charge(Category::SimplexPivots).is_ok());
        }
        assert_eq!(
            g.charge(Category::SimplexPivots).unwrap_err().category,
            Category::SimplexPivots
        );
    }

    #[test]
    fn cancel_token_is_always_governed() {
        let token = Arc::new(AtomicBool::new(false));
        let g = GovernorConfig::default().build_with_cancel(Arc::clone(&token));
        assert!(g.is_governed());
        assert!(g.charge(Category::DfsStates).is_ok());
        token.store(true, Ordering::Relaxed);
        assert_eq!(
            g.charge(Category::DfsStates).unwrap_err().category,
            Category::Cancelled
        );
    }

    #[test]
    fn escalation_stretches_budgets_and_drops_faults() {
        let base = GovernorConfig {
            deadline: Some(Duration::from_millis(100)),
            simplex_pivot_budget: Some(10),
            dfs_state_budget: Some(u64::MAX - 1),
            fault_plan: FaultPlan::parse("rounds:2:unknown").unwrap(),
            ..GovernorConfig::default()
        };
        let attempt0 = base.escalated(0, 4, 4);
        assert_eq!(attempt0, base, "attempt 0 is the configured run");
        let attempt2 = base.escalated(2, 4, 3);
        assert_eq!(attempt2.deadline, Some(Duration::from_millis(1600)));
        assert_eq!(attempt2.simplex_pivot_budget, Some(90));
        assert_eq!(attempt2.dfs_state_budget, Some(u64::MAX), "saturates");
        assert!(attempt2.fault_plan.is_empty(), "retries run clean");
        assert_eq!(attempt2.dpll_decision_budget, None, "unset stays unset");
    }

    #[test]
    fn fault_plan_round_trips_through_config() {
        let cfg = GovernorConfig {
            fault_plan: FaultPlan::parse("rounds:2:unknown").unwrap(),
            ..GovernorConfig::default()
        };
        assert!(!cfg.is_unlimited());
        let g = cfg.build();
        assert!(g.charge(Category::Rounds).is_ok());
        assert_eq!(
            g.charge(Category::Rounds).unwrap_err().category,
            Category::InjectedFault
        );
    }
}
