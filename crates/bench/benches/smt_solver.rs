//! Micro-benchmarks of the SMT substrate: simplex feasibility,
//! branch-and-bound, DPLL over disjunctions, and unsat cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smt::linear::{LinExpr, VarId};
use smt::solver::check;
use smt::term::{TermId, TermPool};
use smt::unsat_core::unsat_core;
use std::hint::black_box;

/// Chain of equalities x0 = 0, x_{i+1} = x_i + 1, plus a bound — the shape
/// of trace feasibility queries.
fn ssa_chain(pool: &mut TermPool, n: usize, sat: bool) -> Vec<TermId> {
    let vars: Vec<VarId> = (0..=n).map(|i| pool.var(&format!("x{i}"))).collect();
    let mut out = vec![pool.eq_const(vars[0], 0)];
    for i in 0..n {
        let lhs = LinExpr::var(vars[i + 1]);
        let rhs = LinExpr::var(vars[i]).add(&LinExpr::constant(1));
        out.push(pool.eq(&lhs, &rhs));
    }
    let bound = if sat { n as i128 } else { n as i128 - 1 };
    out.push(pool.le_const(vars[n], bound));
    if !sat {
        out.push(pool.ge_const(vars[n], n as i128));
    }
    out
}

fn bench_ssa_chains(c: &mut Criterion) {
    let mut g = c.benchmark_group("ssa_chain");
    g.sample_size(20);
    for &n in &[8usize, 32, 64] {
        g.bench_with_input(BenchmarkId::new("sat", n), &n, |b, &n| {
            b.iter(|| {
                let mut pool = TermPool::new();
                let cs = ssa_chain(&mut pool, n, true);
                black_box(check(&mut pool, &cs))
            })
        });
        g.bench_with_input(BenchmarkId::new("unsat", n), &n, |b, &n| {
            b.iter(|| {
                let mut pool = TermPool::new();
                let cs = ssa_chain(&mut pool, n, false);
                black_box(check(&mut pool, &cs))
            })
        });
    }
    g.finish();
}

fn bench_disjunctions(c: &mut Criterion) {
    let mut g = c.benchmark_group("dpll_disjunctions");
    g.sample_size(20);
    for &n in &[4usize, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut pool = TermPool::new();
                // (x_i = 0 ∨ x_i = 1) for all i, Σ x_i ≥ n: forces all 1.
                let vars: Vec<VarId> = (0..n).map(|i| pool.var(&format!("b{i}"))).collect();
                let mut assertions: Vec<TermId> = vars
                    .iter()
                    .map(|&v| {
                        let zero = pool.eq_const(v, 0);
                        let one = pool.eq_const(v, 1);
                        pool.or([zero, one])
                    })
                    .collect();
                let sum = LinExpr::from_terms(vars.iter().map(|&v| (v, 1)), 0);
                assertions.push(pool.ge(&sum, &LinExpr::constant(n as i128)));
                black_box(check(&mut pool, &assertions))
            })
        });
    }
    g.finish();
}

fn bench_unsat_core(c: &mut Criterion) {
    c.bench_function("unsat_core/20_noise", |b| {
        b.iter(|| {
            let mut pool = TermPool::new();
            let x = pool.var("x");
            let mut assertions: Vec<TermId> = (0..20)
                .map(|i| {
                    let v = pool.var(&format!("n{i}"));
                    pool.ge_const(v, i)
                })
                .collect();
            assertions.push(pool.ge_const(x, 5));
            assertions.push(pool.le_const(x, 2));
            black_box(unsat_core(&mut pool, &assertions))
        })
    });
}

criterion_group!(
    benches,
    bench_ssa_chains,
    bench_disjunctions,
    bench_unsat_core
);
criterion_main!(benches);
