//! Deterministic certificate-mutation injection for the audit path.
//!
//! The certificate checker's claim — "a tampered or logically wrong
//! stored verdict is never served" — is only testable if a test can
//! corrupt a certificate *at* the two trust boundaries it crosses:
//!
//! * **engine→store** ([`CertFaultSite::EngineStore`]): the winning run's
//!   certificate is mutated just before it is persisted, modeling a bug in
//!   the verifier or serializer writing a wrong proof;
//! * **store→serve** ([`CertFaultSite::StoreServe`]): the stored
//!   certificate is mutated just after lookup, modeling silent store
//!   corruption that survives the physical checksums (e.g. a record
//!   rewritten wholesale by a buggy compaction).
//!
//! Plans are plain text in the same `SITE:SPEC:N` spirit as
//! [`crate::crash::CrashPlan`] and `smt::resource::FaultPlan`:
//! `--cert-fault store-serve:weaken-annotation:1` mutates the first
//! certificate crossing the store→serve boundary. Arrivals are counted
//! per site with atomic counters, so the plan is exact under concurrency,
//! and the same plan replays the same mutation bit for bit (the arrival
//! index doubles as the mutation salt).
//!
//! Unlike a crash plan, an injected mutation does not abort anything — the
//! property under test is that the *checker* catches it: the daemon must
//! quarantine the record and fall through to fresh verification, serving
//! the correct verdict anyway.

use gemcutter::certify::{CertMutation, Certificate};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The two trust boundaries a certificate crosses inside the daemon.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertFaultSite {
    /// Just before the winning certificate is persisted with its record.
    EngineStore,
    /// Just after a stored certificate is looked up for a warm hit.
    StoreServe,
}

impl CertFaultSite {
    pub const ALL: [CertFaultSite; 2] = [CertFaultSite::EngineStore, CertFaultSite::StoreServe];

    pub fn name(self) -> &'static str {
        match self {
            CertFaultSite::EngineStore => "engine-store",
            CertFaultSite::StoreServe => "store-serve",
        }
    }

    fn parse(s: &str) -> Result<CertFaultSite, String> {
        CertFaultSite::ALL
            .into_iter()
            .find(|site| site.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = CertFaultSite::ALL.iter().map(|s| s.name()).collect();
                format!(
                    "unknown certificate-fault site `{s}` (known: {})",
                    names.join(", ")
                )
            })
    }
}

impl fmt::Display for CertFaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic mutation plan: `SITE:KIND:N[,SITE:KIND:N...]` applies
/// `KIND` to the N-th certificate crossing `SITE`. Counts are 1-based.
#[derive(Debug, Default)]
pub struct CertFaultPlan {
    /// `(site, mutation, arrival)` triples that fire.
    faults: Vec<(CertFaultSite, CertMutation, u64)>,
    /// Arrivals seen so far, indexed by `CertFaultSite as usize`.
    counters: [AtomicU64; 2],
    /// Mutations actually applied (an inapplicable mutation — e.g.
    /// truncate-trace on a proof certificate — fires but changes nothing).
    applied: AtomicU64,
}

impl CertFaultPlan {
    /// Parses a spec like `store-serve:drop-obligation:1` or
    /// `engine-store:weaken-annotation:1,store-serve:truncate-trace:2`.
    pub fn parse(spec: &str) -> Result<CertFaultPlan, String> {
        let mut faults = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let mut fields = part.splitn(3, ':');
            let (site, kind, count) = match (fields.next(), fields.next(), fields.next()) {
                (Some(s), Some(k), Some(n)) => (s, k, n),
                _ => {
                    return Err(format!(
                        "malformed certificate-fault spec `{part}` (want SITE:KIND:N)"
                    ))
                }
            };
            let site = CertFaultSite::parse(site)?;
            let kind = CertMutation::parse(kind)?;
            let count: u64 = count
                .parse()
                .map_err(|_| format!("invalid fault count `{count}` in `{part}`"))?;
            if count == 0 {
                return Err(format!("fault count must be >= 1 in `{part}`"));
            }
            faults.push((site, kind, count));
        }
        Ok(CertFaultPlan {
            faults,
            ..CertFaultPlan::default()
        })
    }

    /// A plan applying `kind` to the `n`-th certificate crossing `site`.
    pub fn inject_at(site: CertFaultSite, kind: CertMutation, n: u64) -> CertFaultPlan {
        CertFaultPlan {
            faults: vec![(site, kind, n.max(1))],
            ..CertFaultPlan::default()
        }
    }

    /// `true` when the plan can never fire.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The canonical spec text (round-trips through
    /// [`CertFaultPlan::parse`]).
    pub fn spec(&self) -> String {
        let parts: Vec<String> = self
            .faults
            .iter()
            .map(|(site, kind, n)| format!("{site}:{}:{n}", kind.name()))
            .collect();
        parts.join(",")
    }

    /// Mutations that found an applicable site so far.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::SeqCst)
    }

    /// Charges one certificate crossing `site`, mutating it in place if
    /// the plan says this arrival is the one. Returns the mutation that
    /// was actually applied, if any.
    pub fn hit(&self, site: CertFaultSite, cert: &mut Certificate) -> Option<CertMutation> {
        let arrival = self.counters[site as usize].fetch_add(1, Ordering::SeqCst) + 1;
        for &(s, kind, n) in &self.faults {
            if s == site && n == arrival {
                if kind.apply(cert, arrival) {
                    self.applied.fetch_add(1, Ordering::SeqCst);
                    eprintln!("certificate-fault injection: {kind:?} applied at {site}:{arrival}");
                    return Some(kind);
                }
                eprintln!(
                    "certificate-fault injection: {kind:?} inapplicable at {site}:{arrival} \
                     (certificate unchanged)"
                );
                return None;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemcutter::certify::CertSpec;

    fn bug_cert() -> Certificate {
        Certificate::Bug {
            fingerprint: 7,
            spec: CertSpec::ErrorOf(0),
            trace: vec![1, 2, 3],
        }
    }

    #[test]
    fn parse_round_trips_and_rejects_junk() {
        let plan = CertFaultPlan::parse("store-serve:drop-obligation:1").unwrap();
        assert_eq!(plan.spec(), "store-serve:drop-obligation:1");
        let both =
            CertFaultPlan::parse("engine-store:weaken-annotation:2,store-serve:truncate-trace:1")
                .unwrap();
        assert_eq!(
            both.spec(),
            "engine-store:weaken-annotation:2,store-serve:truncate-trace:1"
        );
        assert!(CertFaultPlan::parse("").unwrap().is_empty());
        assert!(CertFaultPlan::parse("nonsense:drop-obligation:1").is_err());
        assert!(CertFaultPlan::parse("store-serve:nonsense:1").is_err());
        assert!(CertFaultPlan::parse("store-serve:drop-obligation").is_err());
        assert!(CertFaultPlan::parse("store-serve:drop-obligation:0").is_err());
    }

    #[test]
    fn fires_on_the_exact_arrival_only() {
        let plan =
            CertFaultPlan::inject_at(CertFaultSite::StoreServe, CertMutation::TruncateTrace, 2);
        let mut c = bug_cert();
        assert!(plan.hit(CertFaultSite::StoreServe, &mut c).is_none());
        assert_eq!(c, bug_cert(), "first arrival leaves the cert alone");
        // Wrong site never fires.
        assert!(plan.hit(CertFaultSite::EngineStore, &mut c).is_none());
        assert_eq!(
            plan.hit(CertFaultSite::StoreServe, &mut c),
            Some(CertMutation::TruncateTrace)
        );
        assert_ne!(c, bug_cert(), "second arrival mutates");
        assert_eq!(plan.applied(), 1);
        // Third arrival: spent.
        assert!(plan.hit(CertFaultSite::StoreServe, &mut c).is_none());
    }

    #[test]
    fn inapplicable_mutation_leaves_certificate_untouched() {
        // weaken-annotation has no site on a bug certificate.
        let plan =
            CertFaultPlan::inject_at(CertFaultSite::StoreServe, CertMutation::WeakenAnnotation, 1);
        let mut c = bug_cert();
        assert!(plan.hit(CertFaultSite::StoreServe, &mut c).is_none());
        assert_eq!(c, bug_cert());
        assert_eq!(plan.applied(), 0);
    }
}
