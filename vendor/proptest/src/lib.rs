//! A small, dependency-free stand-in for the [`proptest`] crate.
//!
//! The workspace's registry mirror is not reachable from the build
//! environment, so this crate vendors the *API subset the tests actually
//! use*: `Strategy` with `prop_map`/`prop_flat_map`/`prop_recursive`,
//! range and tuple strategies, `Just`, `any::<bool>()`, simple
//! string-pattern strategies, `collection::vec`, `option::of`,
//! `sample::select`, and the `proptest!`/`prop_oneof!`/`prop_assert*!`
//! macros. Generation is driven by a deterministic splitmix64 PRNG; there
//! is no shrinking — failures report the generated case number, and the
//! fixed seed makes every run reproducible.
//!
//! [`proptest`]: https://crates.io/crates/proptest

pub mod test_runner {
    /// Deterministic splitmix64 generator driving all strategies.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A reproducible generator; the same seed yields the same cases.
        pub fn deterministic(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// The next 64 pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (0 when `n == 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }

        /// Uniform value in `0..n` over 128 bits (0 when `n == 0`).
        pub fn below_u128(&mut self, n: u128) -> u128 {
            if n == 0 {
                return 0;
            }
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % n
        }
    }

    /// Per-test configuration (only the case count is honored).
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A value generator. Unlike real proptest there is no shrinking: a
    /// strategy is just a reproducible sampling function.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> SBox<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = self;
            SBox::new(move |rng| s.generate(rng))
        }

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> SBox<U>
        where
            Self: Sized + 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            let s = self;
            SBox::new(move |rng| f(s.generate(rng)))
        }

        /// Generates a value, builds a second strategy from it, and draws
        /// from that.
        fn prop_flat_map<S2, F>(self, f: F) -> SBox<S2::Value>
        where
            Self: Sized + 'static,
            S2: Strategy,
            F: Fn(Self::Value) -> S2 + 'static,
        {
            let s = self;
            SBox::new(move |rng| f(s.generate(rng)).generate(rng))
        }

        /// Builds recursive structures: `recurse` wraps the strategy for
        /// one more level, applied up to `depth` times, mixing the leaf
        /// back in so shallow values keep appearing.
        fn prop_recursive<F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> SBox<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(SBox<Self::Value>) -> SBox<Self::Value>,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(strat);
                let l = leaf.clone();
                strat = SBox::new(move |rng| {
                    if rng.below(3) == 0 {
                        l.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                });
            }
            strat
        }
    }

    /// A type-erased, clonable strategy.
    pub struct SBox<T> {
        sample: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> SBox<T> {
        /// Wraps a sampling function.
        pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> SBox<T> {
            SBox { sample: Rc::new(f) }
        }
    }

    impl<T> Clone for SBox<T> {
        fn clone(&self) -> SBox<T> {
            SBox {
                sample: Rc::clone(&self.sample),
            }
        }
    }

    impl<T> Strategy for SBox<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.sample)(rng)
        }
    }

    /// Uniform choice among `options` (the `prop_oneof!` backend).
    pub fn one_of<T: 'static>(options: Vec<SBox<T>>) -> SBox<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        SBox::new(move |rng| {
            let i = rng.below(options.len() as u64) as usize;
            options[i].generate(rng)
        })
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    let off = rng.below_u128(span) as i128;
                    (self.start as i128).wrapping_add(off) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                    let off = rng.below_u128(span) as i128;
                    (lo as i128).wrapping_add(off) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128);

    macro_rules! tuple_strategies {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
    }

    /// String strategies from a pattern: a `&str` strategy generates
    /// strings matching a small regex subset — literal characters,
    /// character classes `[a-z0-9_]` (with ranges), and the quantifiers
    /// `{n}`, `{m,n}`, `?`, `*`, `+` (unbounded repeats cap at 8).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed character class")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed quantifier")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad quantifier"),
                        n.trim().parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else if i < chars.len() && chars[i] == '?' {
                i += 1;
                (0, 1)
            } else if i < chars.len() && chars[i] == '*' {
                i += 1;
                (0, 8)
            } else if i < chars.len() && chars[i] == '+' {
                i += 1;
                (1, 8)
            } else {
                (1, 1)
            };
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                let k = rng.below(alphabet.len() as u64) as usize;
                out.push(alphabet[k]);
            }
        }
        out
    }
}

pub mod arbitrary {
    use crate::strategy::SBox;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary + 'static>() -> SBox<T> {
        SBox::new(|rng| T::arbitrary(rng))
    }
}

pub mod collection {
    use crate::strategy::{SBox, Strategy};

    /// Anything usable as a `collection::vec` size: a fixed length or a
    /// (half-open or inclusive) range of lengths.
    pub trait IntoSizeRange {
        /// Inclusive `(min, max)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// A vector of values drawn from `element`, with a length drawn from
    /// `size`.
    pub fn vec<S>(element: S, size: impl IntoSizeRange) -> SBox<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        let (lo, hi) = size.bounds();
        SBox::new(move |rng| {
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..n).map(|_| element.generate(rng)).collect()
        })
    }
}

pub mod option {
    use crate::strategy::{SBox, Strategy};

    /// `Option<T>` values: `Some` three times out of four.
    pub fn of<S>(inner: S) -> SBox<Option<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        SBox::new(move |rng| {
            if rng.below(4) == 0 {
                None
            } else {
                Some(inner.generate(rng))
            }
        })
    }
}

pub mod sample {
    use crate::strategy::SBox;

    /// Uniform choice of one element of `options` (cloned).
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> SBox<T> {
        assert!(!options.is_empty(), "sample::select needs options");
        SBox::new(move |rng| {
            let i = rng.below(options.len() as u64) as usize;
            options[i].clone()
        })
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, SBox, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategy arms (all generating the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(0x5eed);
            for __case in 0..__config.cases {
                let __case: u32 = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic(1);
        for _ in 0..1000 {
            let v = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (-2i128..=2).generate(&mut rng);
            assert!((-2..=2).contains(&w));
        }
    }

    #[test]
    fn determinism() {
        let strat = crate::collection::vec(0u8..5, 0..4);
        let mut a = TestRng::deterministic(9);
        let mut b = TestRng::deterministic(9);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn pattern_strategy() {
        let mut rng = TestRng::deterministic(2);
        for _ in 0..200 {
            let s = "[a-z]{0,6}".generate(&mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf(u8),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(n) => {
                    assert!(*n < 10);
                    1
                }
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..10)
            .prop_map(T::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::deterministic(3);
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut rng)) <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates(x in 0usize..10, flag in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = flag;
        }
    }
}
