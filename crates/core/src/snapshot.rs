//! Crash-safe verification snapshots.
//!
//! At round boundaries the supervised refinement loop serializes its
//! resumable state — program fingerprint, cumulative round counter, the
//! proof assertions accumulated for the in-progress spec (as
//! pool-independent [`ExportedTerm`]s in their stable text form), the
//! give-up history and the attempt counter — into a versioned text file.
//! Writes go through a temp file plus `rename`, so a crash mid-write
//! leaves either the previous complete snapshot or none at all, never a
//! torn one; a trailing `end` marker additionally rejects truncated files.
//!
//! Resuming ([`Snapshot::load`] + `seqver --resume`) seeds a fresh engine's
//! proof automaton with the recycled assertions. This is sound by
//! construction: snapshot assertions are only ever *candidate* proof
//! components — every transition of the proof automaton built from them is
//! re-validated by a Hoare-triple solver query, so a corrupted or even
//! adversarial snapshot can cost completeness (useless candidates), never
//! soundness.

use crate::govern::{AttributedGiveUp, Category, GiveUp};
use program::concurrent::Program;
use smt::term::TermPool;
use smt::transfer::ExportedTerm;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::Path;

/// Current snapshot format version; bumped on any incompatible change.
pub const SNAPSHOT_VERSION: u32 = 1;

/// The header line of a version-1 snapshot.
const HEADER: &str = "seqver-snapshot v1";
/// The trailing completeness marker.
const FOOTER: &str = "end";

/// A resumable checkpoint of a supervised verification run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Fingerprint of the program being verified (guards against resuming
    /// a snapshot on a different input file).
    pub program_hash: u64,
    /// Name of the verifier configuration that produced the snapshot.
    pub config_name: String,
    /// Escalation-ladder attempt in progress when the snapshot was taken.
    pub attempt: u32,
    /// Number of specs (asserting threads) already proven.
    pub specs_done: usize,
    /// Refinement rounds completed so far — the work the recycled
    /// assertions represent; a resumed run continues this counter.
    pub rounds_completed: usize,
    /// Give-up history accumulated across attempts (already deduped).
    pub give_ups: Vec<AttributedGiveUp>,
    /// Proof assertions of the in-progress spec, in discovery order.
    pub assertions: Vec<ExportedTerm>,
}

/// A build-stable fingerprint of the program: name, thread structure and
/// statement labels plus the pre/postcondition. `DefaultHasher::new()`
/// uses fixed keys, so the fingerprint is identical across processes of
/// the same build — exactly the guarantee checkpoint/resume needs.
pub fn program_fingerprint(pool: &TermPool, program: &Program) -> u64 {
    let mut h = DefaultHasher::new();
    program.name().hash(&mut h);
    program.num_threads().hash(&mut h);
    for l in program.letters() {
        program.thread_of(l).0.hash(&mut h);
        program.statement(l).label().hash(&mut h);
    }
    for &v in program.globals() {
        pool.var_name(v).hash(&mut h);
    }
    pool.display(program.pre()).hash(&mut h);
    pool.display(program.post()).hash(&mut h);
    h.finish()
}

/// Replaces characters that would break the line-oriented format.
fn sanitize(s: &str) -> String {
    s.replace(['\n', '\r', '\t'], " ")
}

impl Snapshot {
    /// An empty snapshot for `program` (nothing verified yet).
    pub fn empty(pool: &TermPool, program: &Program, config_name: &str) -> Snapshot {
        Snapshot {
            program_hash: program_fingerprint(pool, program),
            config_name: config_name.to_owned(),
            attempt: 0,
            specs_done: 0,
            rounds_completed: 0,
            give_ups: Vec::new(),
            assertions: Vec::new(),
        }
    }

    /// `true` when the snapshot was taken for this exact program (same
    /// fingerprint under the same build).
    pub fn matches(&self, pool: &TermPool, program: &Program) -> bool {
        self.program_hash == program_fingerprint(pool, program)
    }

    /// Renders the versioned text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("program-hash: {:016x}\n", self.program_hash));
        out.push_str(&format!("config: {}\n", sanitize(&self.config_name)));
        out.push_str(&format!("attempt: {}\n", self.attempt));
        out.push_str(&format!("specs-done: {}\n", self.specs_done));
        out.push_str(&format!("rounds: {}\n", self.rounds_completed));
        for g in &self.give_ups {
            out.push_str(&format!(
                "give-up: {}\t{}\t{}\n",
                g.give_up.category,
                sanitize(&g.engine),
                sanitize(&g.give_up.reason)
            ));
        }
        for a in &self.assertions {
            out.push_str(&format!("assertion: {}\n", a.to_text()));
        }
        out.push_str(FOOTER);
        out.push('\n');
        out
    }

    /// Parses the [`Snapshot::to_text`] form, rejecting version
    /// mismatches, malformed lines and truncated files.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h.trim_end() == HEADER => {}
            Some(h) if h.starts_with("seqver-snapshot") => {
                return Err(format!(
                    "unsupported snapshot version `{h}` (this build reads v{SNAPSHOT_VERSION})"
                ))
            }
            other => return Err(format!("not a seqver snapshot (first line {other:?})")),
        }
        let mut snapshot = Snapshot {
            program_hash: 0,
            config_name: String::new(),
            attempt: 0,
            specs_done: 0,
            rounds_completed: 0,
            give_ups: Vec::new(),
            assertions: Vec::new(),
        };
        let mut complete = false;
        let mut seen_hash = false;
        for line in lines {
            if complete {
                return Err("content after the `end` marker".to_owned());
            }
            let line = line.trim_end();
            if line == FOOTER {
                complete = true;
                continue;
            }
            let (key, value) = line
                .split_once(": ")
                .ok_or_else(|| format!("malformed snapshot line `{line}`"))?;
            match key {
                "program-hash" => {
                    snapshot.program_hash = u64::from_str_radix(value, 16)
                        .map_err(|_| format!("invalid program hash `{value}`"))?;
                    seen_hash = true;
                }
                "config" => snapshot.config_name = value.to_owned(),
                "attempt" => {
                    snapshot.attempt = value
                        .parse()
                        .map_err(|_| format!("invalid attempt `{value}`"))?
                }
                "specs-done" => {
                    snapshot.specs_done = value
                        .parse()
                        .map_err(|_| format!("invalid specs-done `{value}`"))?
                }
                "rounds" => {
                    snapshot.rounds_completed = value
                        .parse()
                        .map_err(|_| format!("invalid rounds `{value}`"))?
                }
                "give-up" => {
                    let mut fields = value.splitn(3, '\t');
                    let (Some(cat), Some(engine), Some(reason)) =
                        (fields.next(), fields.next(), fields.next())
                    else {
                        return Err(format!("malformed give-up line `{line}`"));
                    };
                    let category = Category::parse(cat)
                        .ok_or_else(|| format!("unknown give-up category `{cat}`"))?;
                    snapshot
                        .give_ups
                        .push(AttributedGiveUp::new(engine, GiveUp::new(category, reason)));
                }
                "assertion" => snapshot.assertions.push(ExportedTerm::parse(value)?),
                other => return Err(format!("unknown snapshot key `{other}`")),
            }
        }
        if !complete {
            return Err("truncated snapshot (missing `end` marker)".to_owned());
        }
        if !seen_hash {
            return Err("snapshot has no program-hash".to_owned());
        }
        Ok(snapshot)
    }

    /// Writes the snapshot to `path` crash-safely: the text goes to
    /// `path.tmp` first and is moved into place with an atomic `rename`,
    /// so readers only ever observe complete snapshots.
    pub fn save_atomic(&self, path: &Path) -> Result<(), String> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_text())
            .map_err(|e| format!("cannot write checkpoint `{}`: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            format!(
                "cannot move checkpoint `{}` into place: {e}",
                path.display()
            )
        })
    }

    /// Reads and parses a snapshot file.
    pub fn load(path: &Path) -> Result<Snapshot, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read snapshot `{}`: {e}", path.display()))?;
        Snapshot::parse(&text).map_err(|e| format!("invalid snapshot `{}`: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt::linear::Rel;

    fn sample() -> Snapshot {
        Snapshot {
            program_hash: 0xdead_beef_0042_1337,
            config_name: "gemcutter-seq".to_owned(),
            attempt: 2,
            specs_done: 1,
            rounds_completed: 17,
            give_ups: vec![
                AttributedGiveUp::new(
                    "gemcutter-seq",
                    GiveUp::new(Category::Deadline, "wall-clock deadline exceeded"),
                ),
                AttributedGiveUp::new(
                    "gemcutter-seq",
                    GiveUp::new(Category::SimplexPivots, "budget exhausted after 11 steps"),
                ),
            ],
            assertions: vec![
                ExportedTerm::True,
                ExportedTerm::Atom {
                    coeffs: vec![("x".into(), 1), ("y|weird".into(), -2)],
                    constant: 3,
                    rel: Rel::Le0,
                },
                ExportedTerm::And(vec![ExportedTerm::False]),
            ],
        }
    }

    #[test]
    fn text_round_trip_is_identity() {
        let snap = sample();
        let text = snap.to_text();
        assert_eq!(Snapshot::parse(&text), Ok(snap));
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let text = sample().to_text();
        // Drop the `end` marker: simulates a crash mid-write without the
        // atomic rename (or a torn copy).
        let truncated = text.trim_end().trim_end_matches(FOOTER);
        let err = Snapshot::parse(truncated).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        // Cutting mid-assertion is also rejected.
        let cut = &text[..text.len() / 2];
        assert!(Snapshot::parse(cut).is_err());
    }

    #[test]
    fn version_and_garbage_are_rejected() {
        assert!(Snapshot::parse("seqver-snapshot v999\nend\n")
            .unwrap_err()
            .contains("version"));
        assert!(Snapshot::parse("not a snapshot").is_err());
        assert!(Snapshot::parse("").is_err());
        // Missing hash.
        assert!(Snapshot::parse("seqver-snapshot v1\nend\n")
            .unwrap_err()
            .contains("program-hash"));
    }

    #[test]
    fn save_atomic_round_trips_and_leaves_no_tmp() {
        let snap = sample();
        let dir = std::env::temp_dir().join(format!("seqver-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        snap.save_atomic(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap(), snap);
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file renamed away"
        );
        // Overwrite with a newer snapshot: load sees the newest.
        let mut newer = snap.clone();
        newer.rounds_completed += 1;
        newer.save_atomic(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap().rounds_completed, 18);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
