//! The crash-safe persistent proof store behind `seqver serve`.
//!
//! Persistence is split into two files:
//!
//! * a **snapshot** (`--store PATH`) — the whole store rendered in one
//!   text file: per-program **records** (fingerprint, definitive verdict,
//!   refinement round count, and the harvested Floyd/Hoare assertions in
//!   their pool-independent [`ExportedTerm`] text form), a bounded set of
//!   exported **query-cache entries**, and a `seq:` high-water mark saying
//!   which journal frames it already contains;
//! * a **write-ahead journal** (`PATH.wal`) — an append-only sequence of
//!   [`gemcutter::snapshot::journal_frame`]s, one per newly persisted
//!   record, each carrying its own FNV-1a checksum and a monotone
//!   sequence number.
//!
//! A served verdict is persisted by *appending* one frame and fsyncing
//! the journal — O(record), not O(store) — and the daemon acknowledges
//! the client only after that fsync, so an `OK` response means durable.
//! Appends are staged in a user-space buffer and written by a
//! group-commit leader ([`SharedStore::commit`]): one write + one fsync
//! covers every record staged while the previous fsync was in flight.
//! Background **compaction** folds the journal back into the snapshot
//! (atomic tmp + rename + dir fsync, exactly the old full-rewrite path)
//! once the journal outgrows a configurable ratio of the snapshot, then
//! truncates the journal; crashing *anywhere* inside compaction is safe
//! because replay skips frames at or below the snapshot's `seq:` mark.
//!
//! Robustness contract:
//!
//! * **Torn-tail recovery** — replay applies the longest valid frame
//!   prefix, truncates the journal at the first bad frame, and keeps
//!   going; stale or duplicated frames (the residue of a compaction
//!   crash) are skipped, never double-applied.
//! * **Per-record checksums** — every record, frame and query-cache entry
//!   carries an FNV-1a checksum over its own body *including the
//!   fingerprint/sequence key*, so a flipped bit anywhere (even one that
//!   would re-home a record) drops exactly that entry.
//! * **Lenient loading** — [`ProofStore::open`] never panics and never
//!   fails: a missing file is a fresh store, a wrong version or missing
//!   `end` marker is a cold snapshot, and a corrupt record or frame is
//!   dropped with a warning while intact siblings survive. The worst
//!   corruption can do is cost warm starts.
//! * **Soundness regardless** — even a record that passes its checksum is
//!   only ever *advice*: assertions are re-validated by Hoare queries when
//!   seeded, query-cache `Sat` models are re-validated by evaluation, and
//!   a stored verdict is only served for an exact fingerprint match of a
//!   program this build already verified.
//!
//! Every durability site is instrumented with [`CrashSite`] charges so the
//! crash-point sweep can abort the process between any two steps and
//! assert what the next process recovers.

use crate::crash::{CrashPlan, CrashSite};
use gemcutter::certify::Certificate;
use gemcutter::snapshot::{fnv1a, journal_frame, replay_journal, write_atomic_durable};
use smt::qcache::CachedVerdict;
use smt::transfer::ExportedTerm;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// First line of a store snapshot file.
pub const STORE_HEADER: &str = "seqver-store v2";
/// The previous snapshot version: identical except it has no `seq:` line.
const STORE_HEADER_V1: &str = "seqver-store v1";
/// Trailing completeness marker.
const FOOTER: &str = "end";

/// The journal that belongs to the snapshot at `store`.
pub fn journal_path(store: &Path) -> PathBuf {
    let mut name = store
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "proofs.store".into());
    name.push(".wal");
    store.with_file_name(name)
}

/// How the store reaches disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PersistMode {
    /// Append one checksummed frame per record, fsync on commit, compact
    /// in the background. The default.
    Journal,
    /// The pre-journal behavior: rewrite the whole snapshot durably on
    /// every append. Kept as `--no-journal` for ablation and as the
    /// degraded fallback when the journal file cannot be opened.
    Rewrite,
}

/// A definitive verdict worth persisting. `GaveUp` outcomes are
/// deliberately unrepresentable: they depend on the budgets of the run
/// that produced them, so replaying one from disk could mask a verdict a
/// better-resourced rerun would reach.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoredVerdict {
    Correct,
    /// The witness interleaving as statement letter indices.
    Incorrect(Vec<u32>),
}

impl StoredVerdict {
    fn to_line(&self) -> String {
        match self {
            StoredVerdict::Correct => "correct".to_owned(),
            StoredVerdict::Incorrect(trace) => {
                let letters: Vec<String> = trace.iter().map(u32::to_string).collect();
                format!("incorrect {}", letters.join(" "))
                    .trim_end()
                    .to_owned()
            }
        }
    }

    fn parse(s: &str) -> Result<StoredVerdict, String> {
        if s == "correct" {
            return Ok(StoredVerdict::Correct);
        }
        if let Some(trace) = s.strip_prefix("incorrect") {
            let letters: Result<Vec<u32>, _> = trace.split_whitespace().map(str::parse).collect();
            return letters
                .map(StoredVerdict::Incorrect)
                .map_err(|_| format!("invalid trace in stored verdict `{s}`"));
        }
        Err(format!("unknown stored verdict `{s}`"))
    }
}

/// One program's persisted result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreRecord {
    /// [`gemcutter::snapshot::program_fingerprint`] of the program.
    pub fingerprint: u64,
    /// Program name — the near-duplicate warm-start key: a resubmitted
    /// program whose fingerprint changed but whose name matches seeds
    /// from this record's assertions.
    pub name: String,
    pub verdict: StoredVerdict,
    /// Refinement rounds the original run took (reported on store hits).
    pub rounds: u64,
    /// Harvested proof assertions, discovery order.
    pub assertions: Vec<ExportedTerm>,
    /// The winning run's verdict certificate, re-checked before this
    /// record's verdict is ever served warm. `None` for records written by
    /// pre-certificate builds or runs whose recording hit a budget.
    pub certificate: Option<Certificate>,
}

impl StoreRecord {
    /// The checksummed body: every line after the `record:` line through
    /// `end-record`, exactly as written.
    fn body(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("name: {}\n", self.name.replace(['\n', '\r'], " ")));
        out.push_str(&format!("verdict: {}\n", self.verdict.to_line()));
        out.push_str(&format!("rounds: {}\n", self.rounds));
        for a in &self.assertions {
            out.push_str(&format!("assertion: {}\n", a.to_text()));
        }
        if let Some(cert) = &self.certificate {
            for line in cert.to_lines() {
                out.push_str(&format!("cert: {line}\n"));
            }
        }
        out.push_str("end-record\n");
        out
    }

    /// Checksum over fingerprint *and* body, so a bit flip in the
    /// `record:` header line (which would re-home the record under a
    /// different program) is caught exactly like one in the body.
    fn checksum(&self) -> u64 {
        fnv1a(format!("{:016x}\n{}", self.fingerprint, self.body()).as_bytes())
    }

    /// The record's full text form — the same bytes whether it sits in a
    /// snapshot or inside a journal frame body.
    pub fn to_text(&self) -> String {
        format!(
            "record: {:016x} {:016x}\n{}",
            self.fingerprint,
            self.checksum(),
            self.body()
        )
    }

    /// Parses one record given its header fields and body lines.
    fn parse(fingerprint: u64, declared: u64, body: &str) -> Result<StoreRecord, String> {
        let actual = fnv1a(format!("{fingerprint:016x}\n{body}").as_bytes());
        if actual != declared {
            return Err(format!(
                "record {fingerprint:016x}: checksum mismatch (declared {declared:016x}, \
                 computed {actual:016x})"
            ));
        }
        let mut record = StoreRecord {
            fingerprint,
            name: String::new(),
            verdict: StoredVerdict::Correct,
            rounds: 0,
            assertions: Vec::new(),
            certificate: None,
        };
        let mut seen_verdict = false;
        let mut cert_lines: Vec<&str> = Vec::new();
        for line in body.lines() {
            if line == "end-record" {
                break;
            }
            let (key, value) = line
                .split_once(": ")
                .ok_or_else(|| format!("malformed record line `{line}`"))?;
            match key {
                "name" => record.name = value.to_owned(),
                "verdict" => {
                    record.verdict = StoredVerdict::parse(value)?;
                    seen_verdict = true;
                }
                "rounds" => {
                    record.rounds = value
                        .parse()
                        .map_err(|_| format!("invalid rounds `{value}`"))?
                }
                "assertion" => record.assertions.push(ExportedTerm::parse(value)?),
                "cert" => cert_lines.push(value),
                other => return Err(format!("unknown record key `{other}`")),
            }
        }
        if !seen_verdict {
            return Err(format!("record {fingerprint:016x} has no verdict"));
        }
        if !cert_lines.is_empty() {
            record.certificate = Some(
                Certificate::from_lines(cert_lines.iter().copied())
                    .map_err(|e| format!("record {fingerprint:016x}: bad certificate: {e}"))?,
            );
        }
        Ok(record)
    }

    /// Parses [`StoreRecord::to_text`] back — the shape a journal frame
    /// body takes.
    pub fn parse_text(text: &str) -> Result<StoreRecord, String> {
        let (first, body) = text
            .split_once('\n')
            .ok_or_else(|| "record text has no header line".to_owned())?;
        let header = first
            .strip_prefix("record: ")
            .ok_or_else(|| format!("not a record header: `{first}`"))?;
        let (fp, sum) = parse_record_header(header)?;
        StoreRecord::parse(fp, sum, body)
    }
}

/// Counters the daemon reports in its `stats` line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Frames staged into the journal.
    pub appends: u64,
    /// Journal `fsync`s (one per group commit, not per record).
    pub fsyncs: u64,
    /// Journal-into-snapshot compactions.
    pub compactions: u64,
    /// Frames applied from the journal at open.
    pub replayed_frames: u64,
    /// Stale/duplicate frames skipped at open (compaction-crash residue).
    pub stale_frames: u64,
}

/// The journal file plus the group-commit staging buffer. Frames are
/// staged here under the store lock and written + fsynced by the commit
/// leader outside it, so an abort before the commit genuinely loses the
/// staged frames — exactly what an unacknowledged record is allowed to
/// lose.
#[derive(Debug)]
struct Journal {
    file: File,
    /// Frames staged but not yet written to the file.
    pending: Vec<u8>,
    /// Highest sequence number in `pending` (valid when non-empty).
    pending_seq: u64,
}

/// The in-memory store plus its optional backing snapshot + journal.
#[derive(Debug)]
pub struct ProofStore {
    path: Option<PathBuf>,
    /// Insertion order, for stable rendering; at most one per fingerprint.
    records: Vec<StoreRecord>,
    by_fingerprint: HashMap<u64, usize>,
    qcache_entries: Vec<(ExportedTerm, CachedVerdict)>,
    mode: PersistMode,
    journal: Option<Journal>,
    /// Sequence number the next appended frame will carry (1-based).
    next_seq: u64,
    /// Highest sequence number folded into the snapshot file.
    folded_seq: u64,
    /// Highest sequence number known to be fsynced (journal or snapshot).
    durable_seq: u64,
    /// Group-commit leader election flag (see [`SharedStore::commit`]).
    committing: bool,
    crash: Arc<CrashPlan>,
    stats: StoreStats,
    /// Bytes currently in the journal file (excludes the pending buffer).
    journal_bytes: u64,
    /// Size of the snapshot file at last write/load (compaction baseline).
    snapshot_bytes: u64,
}

impl Default for ProofStore {
    fn default() -> ProofStore {
        ProofStore {
            path: None,
            records: Vec::new(),
            by_fingerprint: HashMap::new(),
            qcache_entries: Vec::new(),
            mode: PersistMode::Journal,
            journal: None,
            next_seq: 1,
            folded_seq: 0,
            durable_seq: 0,
            committing: false,
            crash: Arc::default(),
            stats: StoreStats::default(),
            journal_bytes: 0,
            snapshot_bytes: 0,
        }
    }
}

impl ProofStore {
    /// A store with no backing file (tests, `serve` without `--store`).
    pub fn in_memory() -> ProofStore {
        ProofStore::default()
    }

    /// Opens (or initializes) the store at `path` in the default
    /// journaled mode with no crash plan.
    pub fn open(path: &Path) -> (ProofStore, Vec<String>) {
        ProofStore::open_with(path, PersistMode::Journal, Arc::default())
    }

    /// Opens (or initializes) the store at `path`, leniently: the result
    /// is always usable, and every piece of the snapshot or journal that
    /// had to be dropped is described by a warning. Never panics, never
    /// errors. A torn journal tail is physically truncated so subsequent
    /// appends land on a clean prefix.
    pub fn open_with(
        path: &Path,
        mode: PersistMode,
        crash: Arc<CrashPlan>,
    ) -> (ProofStore, Vec<String>) {
        let mut snapshot_missing = false;
        let (mut store, mut warnings) = match std::fs::read_to_string(path) {
            Ok(text) => {
                let (mut store, warnings) = ProofStore::parse(&text);
                store.snapshot_bytes = text.len() as u64;
                (store, warnings)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                snapshot_missing = true;
                (ProofStore::default(), Vec::new())
            }
            Err(e) => (
                ProofStore::default(),
                vec![format!(
                    "cannot read store `{}`: {e}; starting cold",
                    path.display()
                )],
            ),
        };
        store.path = Some(path.to_path_buf());
        store.mode = mode;
        store.crash = crash;

        // Replay the journal in BOTH modes: a `--no-journal` restart after
        // a journaled run must not silently ignore durable frames.
        let jpath = journal_path(path);
        let jbytes = match std::fs::read(&jpath) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => {
                warnings.push(format!(
                    "cannot read journal `{}`: {e}; its frames are lost",
                    jpath.display()
                ));
                Vec::new()
            }
        };
        if !jbytes.is_empty() {
            let replay = replay_journal(&jbytes);
            let mut applied = store.folded_seq;
            let mut stale = 0u64;
            for frame in &replay.frames {
                if frame.seq <= applied {
                    stale += 1;
                    continue;
                }
                match StoreRecord::parse_text(&frame.body) {
                    Ok(record) => {
                        store.insert(record);
                        applied = frame.seq;
                        store.stats.replayed_frames += 1;
                    }
                    Err(e) => {
                        warnings.push(format!("journal frame {:016x} dropped: {e}", frame.seq))
                    }
                }
            }
            if stale > 0 {
                store.stats.stale_frames = stale;
                warnings.push(format!(
                    "warning: skipped {stale} stale journal frame(s) already folded into \
                     the snapshot (compaction-crash residue)"
                ));
            }
            if let Some(torn) = &replay.torn {
                warnings.push(format!(
                    "warning: journal tail truncated at byte {}: {torn}",
                    replay.valid_len
                ));
                if let Err(e) = truncate_file(&jpath, replay.valid_len as u64) {
                    warnings.push(format!(
                        "cannot truncate torn journal `{}`: {e}",
                        jpath.display()
                    ));
                }
            }
            store.next_seq = applied.saturating_add(1);
            store.durable_seq = applied;
            store.journal_bytes = replay.valid_len as u64;
        }

        if store.mode == PersistMode::Journal {
            match OpenOptions::new().create(true).append(true).open(&jpath) {
                Ok(file) => {
                    store.journal = Some(Journal {
                        file,
                        pending: Vec::new(),
                        pending_seq: store.next_seq - 1,
                    })
                }
                Err(e) => {
                    warnings.push(format!(
                        "cannot open journal `{}`: {e}; falling back to rewrite-per-flush \
                         persistence",
                        jpath.display()
                    ));
                    store.mode = PersistMode::Rewrite;
                }
            }
        }

        // A journaled store keeps the snapshot present from the start, so
        // a crash before the first compaction still leaves a well-formed
        // (empty) snapshot plus the journal. Also folds in any frames a
        // snapshot-less journal carried.
        if snapshot_missing {
            if let Err(e) = store.write_snapshot_plain() {
                warnings.push(format!("cannot initialize store `{}`: {e}", path.display()));
            }
        }
        (store, warnings)
    }

    /// Parses a snapshot file, dropping whatever does not verify. A bad
    /// header/version or a missing `end` marker (truncation — impossible
    /// under our own atomic writer, so the file is foreign or damaged)
    /// degrades to a fully cold store.
    pub fn parse(text: &str) -> (ProofStore, Vec<String>) {
        let mut store = ProofStore::default();
        let mut warnings = Vec::new();
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h == STORE_HEADER || h == STORE_HEADER_V1 => {}
            Some(h) => {
                warnings.push(format!(
                    "unsupported store header `{h}` (this build reads `{STORE_HEADER}`); \
                     starting cold"
                ));
                return (store, warnings);
            }
            None => {
                warnings.push("empty store file; starting cold".to_owned());
                return (store, warnings);
            }
        }
        if !text.lines().any(|l| l == FOOTER) {
            warnings.push("store is truncated (no `end` marker); starting cold".to_owned());
            return (ProofStore::default(), warnings);
        }
        let mut complete = false;
        while let Some(line) = lines.next() {
            if complete {
                warnings.push("content after the `end` marker ignored".to_owned());
                break;
            }
            if line == FOOTER {
                complete = true;
                continue;
            }
            if let Some(value) = line.strip_prefix("seq: ") {
                match u64::from_str_radix(value, 16) {
                    Ok(seq) => {
                        store.folded_seq = seq;
                        store.durable_seq = seq;
                        store.next_seq = seq.saturating_add(1);
                    }
                    Err(_) => warnings.push(format!("invalid store seq line `{line}` ignored")),
                }
            } else if let Some(header) = line.strip_prefix("record: ") {
                // Collect the body through `end-record`, then verify.
                let mut body = String::new();
                let mut closed = false;
                for body_line in lines.by_ref() {
                    body.push_str(body_line);
                    body.push('\n');
                    if body_line == "end-record" {
                        closed = true;
                        break;
                    }
                    if body_line == FOOTER || body_line.starts_with("record: ") {
                        break;
                    }
                }
                if !closed {
                    warnings.push(format!("unterminated record `{header}` dropped"));
                    // The inner scan may have consumed the footer; it was
                    // already sighted by the whole-file check above, so
                    // parsing simply ends here.
                    if body.contains(&format!("\n{FOOTER}\n"))
                        || body.ends_with(&format!("{FOOTER}\n"))
                    {
                        break;
                    }
                    continue;
                }
                match parse_record_header(header)
                    .and_then(|(fp, sum)| StoreRecord::parse(fp, sum, &body))
                {
                    Ok(record) => store.insert(record),
                    Err(e) => warnings.push(format!("store record dropped: {e}")),
                }
            } else if let Some(rest) = line.strip_prefix("qcache: ") {
                match parse_qcache_line(rest) {
                    Ok(entry) => store.qcache_entries.push(entry),
                    Err(e) => warnings.push(format!("store qcache entry dropped: {e}")),
                }
            } else {
                warnings.push(format!("unrecognized store line `{line}` ignored"));
            }
        }
        (store, warnings)
    }

    /// Renders the whole snapshot, stamped with the highest sequence
    /// number it folds in (so journal replay can skip what it contains).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(STORE_HEADER);
        out.push('\n');
        out.push_str(&format!("seq: {:016x}\n", self.next_seq - 1));
        for record in &self.records {
            out.push_str(&record.to_text());
        }
        for (key, verdict) in &self.qcache_entries {
            let body = format!("{}\t{}", verdict.to_text(), key.to_text());
            out.push_str(&format!("qcache: {:016x} {body}\n", fnv1a(body.as_bytes())));
        }
        out.push_str(FOOTER);
        out.push('\n');
        out
    }

    /// Appends one record: inserts it in memory and stages its journal
    /// frame (journal mode) or rewrites the whole snapshot durably
    /// (rewrite mode). Returns the record's sequence number; in journal
    /// mode the record is **not durable** until [`SharedStore::commit`]
    /// reports that sequence number synced.
    pub fn append(&mut self, record: StoreRecord) -> Result<u64, String> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let frame_body = record.to_text();
        self.insert(record);
        match (self.path.is_some(), self.mode, self.journal.is_some()) {
            (false, _, _) => {
                // In-memory: nothing can be more durable than it already is.
                self.durable_seq = seq;
            }
            (true, PersistMode::Journal, true) => {
                let frame = journal_frame(seq, &frame_body);
                let crash = Arc::clone(&self.crash);
                crash.hit(CrashSite::PreAppend);
                let journal = self.journal.as_mut().expect("journal present");
                journal.pending.extend_from_slice(frame.as_bytes());
                journal.pending_seq = seq;
                crash.hit(CrashSite::PostAppend);
                self.stats.appends += 1;
            }
            (true, _, _) => {
                // Rewrite mode (or a degraded journal): the old
                // O(store-size) durable rewrite, synchronous.
                self.write_snapshot_plain()?;
            }
        }
        Ok(seq)
    }

    /// Folds everything into the snapshot and empties the journal. Used
    /// by the background compactor and the final drain flush; instruments
    /// the compaction crash sites.
    pub fn compact(&mut self) -> Result<(), String> {
        let Some(path) = self.path.clone() else {
            return Ok(());
        };
        if self.journal.is_none() {
            return self.write_snapshot_plain();
        }
        let target = self.next_seq - 1;
        let text = self.to_text();
        self.write_snapshot_with_crash_sites(&path, &text)?;
        // The snapshot now durably covers every sequence number through
        // `target`; all journal frames are stale. Truncation is cleanup,
        // not a correctness step — a crash before it only means stale
        // frames get skipped on replay.
        let journal = self.journal.as_mut().expect("journal present");
        journal.pending.clear();
        journal.pending_seq = target;
        journal
            .file
            .set_len(0)
            .map_err(|e| format!("cannot truncate journal: {e}"))?;
        let _ = journal.file.sync_all();
        self.journal_bytes = 0;
        self.snapshot_bytes = text.len() as u64;
        self.folded_seq = target;
        self.durable_seq = self.durable_seq.max(target);
        self.stats.compactions += 1;
        Ok(())
    }

    /// `true` once the journal file has outgrown `max_ratio` times the
    /// snapshot (with a small floor so a near-empty snapshot does not
    /// force compaction on every append).
    pub fn needs_compaction(&self, max_ratio: f64) -> bool {
        if self.journal.is_none() || self.path.is_none() {
            return false;
        }
        let base = self.snapshot_bytes.max(1024) as f64;
        self.journal_bytes > 0 && self.journal_bytes as f64 > max_ratio * base
    }

    /// Writes the store to its backing file durably; a no-op for
    /// in-memory stores. In journal mode this compacts (fold + truncate),
    /// in rewrite mode it rewrites the snapshot.
    pub fn flush(&mut self) -> Result<(), String> {
        if self.path.is_none() {
            return Ok(());
        }
        self.compact()
    }

    /// The plain (un-instrumented) durable snapshot write: used at open
    /// time and by rewrite mode, where crash-point injection would abort
    /// before the daemon ever serves.
    fn write_snapshot_plain(&mut self) -> Result<(), String> {
        let Some(path) = self.path.clone() else {
            return Ok(());
        };
        let text = self.to_text();
        write_atomic_durable(&path, &text)?;
        self.snapshot_bytes = text.len() as u64;
        self.folded_seq = self.next_seq - 1;
        self.durable_seq = self.durable_seq.max(self.next_seq - 1);
        Ok(())
    }

    /// `write_atomic_durable`, unrolled so every durability site can be
    /// charged against the crash plan.
    fn write_snapshot_with_crash_sites(&self, path: &Path, text: &str) -> Result<(), String> {
        let mut tmp_name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_else(|| "store".into());
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        {
            let mut file = File::create(&tmp)
                .map_err(|e| format!("cannot create `{}`: {e}", tmp.display()))?;
            file.write_all(text.as_bytes())
                .map_err(|e| format!("cannot write `{}`: {e}", tmp.display()))?;
            self.crash.hit(CrashSite::CompactTmp);
            file.sync_all()
                .map_err(|e| format!("cannot sync `{}`: {e}", tmp.display()))?;
        }
        self.crash.hit(CrashSite::PreRename);
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("cannot rename over `{}`: {e}", path.display()))?;
        self.crash.hit(CrashSite::PostRename);
        // Directory fsync is best-effort, matching `write_atomic_durable`:
        // some filesystems refuse to open directories for writing.
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Inserts (or replaces, by fingerprint) one record in memory only.
    pub fn insert(&mut self, record: StoreRecord) {
        match self.by_fingerprint.get(&record.fingerprint) {
            Some(&i) => self.records[i] = record,
            None => {
                self.by_fingerprint
                    .insert(record.fingerprint, self.records.len());
                self.records.push(record);
            }
        }
    }

    /// The record for an exact program fingerprint, if present.
    pub fn lookup(&self, fingerprint: u64) -> Option<&StoreRecord> {
        self.by_fingerprint
            .get(&fingerprint)
            .map(|&i| &self.records[i])
    }

    /// Quarantines a record: removes it from memory and, for a backed
    /// store, immediately compacts so neither the snapshot nor the
    /// journal can resurrect it on restart. Returns whether a record was
    /// present. Used when a stored certificate fails its re-check — the
    /// verdict must never be served again.
    pub fn remove(&mut self, fingerprint: u64) -> Result<bool, String> {
        let Some(i) = self.by_fingerprint.remove(&fingerprint) else {
            return Ok(false);
        };
        self.records.remove(i);
        for idx in self.by_fingerprint.values_mut() {
            if *idx > i {
                *idx -= 1;
            }
        }
        if self.path.is_some() {
            self.compact()?;
        }
        Ok(true)
    }

    /// Warm-start seeds for a program that misses by fingerprint:
    /// assertions harvested from same-name records (near-duplicate
    /// programs — edited sources keep their name), deduped in discovery
    /// order. Sound to seed because every assertion is re-validated by
    /// Hoare queries on use.
    pub fn warm_assertions(&self, name: &str, fingerprint: u64) -> Vec<ExportedTerm> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for record in &self.records {
            if record.name == name && record.fingerprint != fingerprint {
                for a in &record.assertions {
                    if seen.insert(a.clone()) {
                        out.push(a.clone());
                    }
                }
            }
        }
        out
    }

    /// Replaces the persisted query-cache working set.
    pub fn set_qcache_entries(&mut self, entries: Vec<(ExportedTerm, CachedVerdict)>) {
        self.qcache_entries = entries;
    }

    /// The persisted query-cache entries (imported on startup).
    pub fn qcache_entries(&self) -> &[(ExportedTerm, CachedVerdict)] {
        &self.qcache_entries
    }

    /// All records, insertion order.
    pub fn records(&self) -> &[StoreRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// `true` when the store has a backing file — the precondition for a
    /// response's `durable` bit.
    pub fn persistent(&self) -> bool {
        self.path.is_some()
    }

    /// Journal/compaction counters for the daemon's stats line.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Bytes currently in the journal file.
    pub fn journal_bytes(&self) -> u64 {
        self.journal_bytes
    }

    /// Size of the snapshot at last load/write.
    pub fn snapshot_bytes(&self) -> u64 {
        self.snapshot_bytes
    }

    /// Highest sequence number known durable.
    pub fn durable_seq(&self) -> u64 {
        self.durable_seq
    }

    /// Takes the pending journal buffer for the commit leader: the file
    /// handle to write through, the staged bytes, and the highest staged
    /// sequence number. `None` when there is nothing to sync.
    fn take_pending(&mut self) -> Result<Option<(File, Vec<u8>, u64)>, String> {
        let Some(journal) = self.journal.as_mut() else {
            return Ok(None);
        };
        if journal.pending.is_empty() {
            return Ok(None);
        }
        let file = journal
            .file
            .try_clone()
            .map_err(|e| format!("cannot clone journal handle: {e}"))?;
        Ok(Some((
            file,
            std::mem::take(&mut journal.pending),
            journal.pending_seq,
        )))
    }

    /// Puts unsynced bytes back at the front of the pending buffer after
    /// a failed commit write, so a later commit can retry them in order.
    fn restash_pending(&mut self, mut bytes: Vec<u8>) {
        if let Some(journal) = self.journal.as_mut() {
            bytes.extend_from_slice(&journal.pending);
            journal.pending = bytes;
        }
    }

    /// Records a successful group commit through `target`.
    fn note_synced(&mut self, target: u64, bytes_written: u64) {
        self.durable_seq = self.durable_seq.max(target);
        self.journal_bytes += bytes_written;
        self.stats.fsyncs += 1;
    }
}

/// The store as the daemon shares it between workers, the compactor and
/// the drain path: a mutex for in-memory access plus a group-commit
/// protocol that batches journal fsyncs.
///
/// Workers append under the lock (memory-only staging) and then call
/// [`SharedStore::commit`], which elects one **leader** to write + fsync
/// everything staged so far while later appenders keep making progress;
/// followers whose sequence number the leader covered return without
/// touching the disk at all. Under load, one fsync acknowledges a whole
/// admission drain.
#[derive(Debug)]
pub struct SharedStore {
    inner: Mutex<ProofStore>,
    commit_cv: Condvar,
}

impl SharedStore {
    pub fn new(store: ProofStore) -> SharedStore {
        SharedStore {
            inner: Mutex::new(store),
            commit_cv: Condvar::new(),
        }
    }

    /// Locks the in-memory store. Poisoning is survivable here — the
    /// store's state is checksummed advice, and a panicking worker is
    /// already quarantined — so the lock is recovered, not propagated.
    pub fn lock(&self) -> MutexGuard<'_, ProofStore> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until sequence number `seq` is durable (journal fsynced or
    /// folded into a durable snapshot). Returns immediately for
    /// in-memory and rewrite-mode stores, whose appends are already as
    /// durable as they will get.
    pub fn commit(&self, seq: u64) -> Result<(), String> {
        let mut guard = self.lock();
        loop {
            if guard.durable_seq >= seq {
                return Ok(());
            }
            if guard.committing {
                guard = self
                    .commit_cv
                    .wait(guard)
                    .unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            let Some((file, bytes, target)) = guard.take_pending()? else {
                // Nothing staged yet durability lags `seq`: the frames
                // were folded by a racing compaction or lost to an
                // earlier failed commit that already reported its error.
                return Ok(());
            };
            guard.committing = true;
            drop(guard);
            let result = write_and_sync(&file, &bytes);
            guard = self.lock();
            guard.committing = false;
            match result {
                Ok(()) => guard.note_synced(target, bytes.len() as u64),
                Err(e) => {
                    guard.restash_pending(bytes);
                    self.commit_cv.notify_all();
                    return Err(e);
                }
            }
            self.commit_cv.notify_all();
        }
    }

    /// `true` once the journal has outgrown `max_ratio` × snapshot.
    pub fn needs_compaction(&self, max_ratio: f64) -> bool {
        self.lock().needs_compaction(max_ratio)
    }

    /// Folds the journal into the snapshot, persisting `qcache_entries`
    /// along the way. Waits out any in-flight group commit first so the
    /// fold and the commit never interleave on the file.
    pub fn compact_with_qcache(
        &self,
        qcache_entries: Vec<(ExportedTerm, CachedVerdict)>,
    ) -> Result<(), String> {
        let mut guard = self.lock();
        while guard.committing {
            guard = self
                .commit_cv
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
        guard.set_qcache_entries(qcache_entries);
        guard.compact()
    }

    /// Quarantines a record whose certificate failed its re-check: waits
    /// out any in-flight group commit (the fold and the commit must not
    /// interleave on the journal file), then removes + compacts.
    pub fn quarantine(&self, fingerprint: u64) -> Result<bool, String> {
        let mut guard = self.lock();
        while guard.committing {
            guard = self
                .commit_cv
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
        guard.remove(fingerprint)
    }
}

fn write_and_sync(mut file: &File, bytes: &[u8]) -> Result<(), String> {
    file.write_all(bytes)
        .map_err(|e| format!("journal write failed: {e}"))?;
    file.sync_all()
        .map_err(|e| format!("journal fsync failed: {e}"))
}

fn truncate_file(path: &Path, len: u64) -> Result<(), String> {
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| e.to_string())?;
    file.set_len(len).map_err(|e| e.to_string())?;
    file.sync_all().map_err(|e| e.to_string())
}

fn parse_record_header(header: &str) -> Result<(u64, u64), String> {
    let (fp, sum) = header
        .split_once(' ')
        .ok_or_else(|| format!("malformed record header `{header}`"))?;
    let fp = u64::from_str_radix(fp, 16).map_err(|_| format!("invalid fingerprint `{fp}`"))?;
    let sum = u64::from_str_radix(sum, 16).map_err(|_| format!("invalid checksum `{sum}`"))?;
    Ok((fp, sum))
}

fn parse_qcache_line(rest: &str) -> Result<(ExportedTerm, CachedVerdict), String> {
    let (sum, body) = rest
        .split_once(' ')
        .ok_or_else(|| format!("malformed qcache line `{rest}`"))?;
    let declared =
        u64::from_str_radix(sum, 16).map_err(|_| format!("invalid qcache checksum `{sum}`"))?;
    let actual = fnv1a(body.as_bytes());
    if declared != actual {
        return Err(format!(
            "qcache entry checksum mismatch (declared {declared:016x}, computed {actual:016x})"
        ));
    }
    let (verdict, key) = body
        .split_once('\t')
        .ok_or_else(|| format!("malformed qcache body `{body}`"))?;
    Ok((ExportedTerm::parse(key)?, CachedVerdict::parse(verdict)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt::linear::Rel;

    fn atom(name: &str, k: i128) -> ExportedTerm {
        ExportedTerm::Atom {
            coeffs: vec![(name.to_owned(), 1)],
            constant: k,
            rel: Rel::Le0,
        }
    }

    fn record(fp: u64, name: &str, rounds: u64) -> StoreRecord {
        StoreRecord {
            fingerprint: fp,
            name: name.into(),
            verdict: StoredVerdict::Correct,
            rounds,
            assertions: vec![atom("x", -1)],
            certificate: None,
        }
    }

    fn sample() -> ProofStore {
        let mut store = ProofStore::in_memory();
        store.insert(StoreRecord {
            fingerprint: 0x1111,
            name: "counter".into(),
            verdict: StoredVerdict::Correct,
            rounds: 7,
            assertions: vec![atom("x", -1), ExportedTerm::And(vec![atom("y", 2)])],
            certificate: None,
        });
        store.insert(StoreRecord {
            fingerprint: 0x2222,
            name: "counter-racy".into(),
            verdict: StoredVerdict::Incorrect(vec![0, 3, 1]),
            rounds: 2,
            assertions: vec![],
            certificate: None,
        });
        store.set_qcache_entries(vec![
            (atom("z", 5), CachedVerdict::Unsat),
            (atom("w", -3), CachedVerdict::Sat(vec![("w".into(), 3)])),
        ]);
        store
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("seqver-store-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_is_identity() {
        let store = sample();
        let (reparsed, warnings) = ProofStore::parse(&store.to_text());
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(reparsed.records(), store.records());
        assert_eq!(reparsed.qcache_entries(), store.qcache_entries());
    }

    #[test]
    fn v1_snapshots_still_load() {
        let text = sample().to_text();
        let v1 = text.replacen(STORE_HEADER, STORE_HEADER_V1, 1).replacen(
            "seq: 0000000000000000\n",
            "",
            1,
        );
        let (store, warnings) = ProofStore::parse(&v1);
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(store.records(), sample().records());
    }

    #[test]
    fn record_text_round_trips() {
        let r = record(0xabcd, "prog", 3);
        assert_eq!(StoreRecord::parse_text(&r.to_text()).unwrap(), r);
        assert!(StoreRecord::parse_text("garbage").is_err());
    }

    #[test]
    fn lookup_and_warm_assertions() {
        let mut store = sample();
        assert_eq!(store.lookup(0x1111).unwrap().rounds, 7);
        assert!(store.lookup(0x9999).is_none());
        // Same-name record with a different fingerprint contributes seeds.
        assert_eq!(store.warm_assertions("counter", 0xdead).len(), 2);
        // ... but an exact-fingerprint match does not (it is a store hit).
        assert!(store.warm_assertions("counter", 0x1111).is_empty());
        // Replacement by fingerprint, not duplication.
        store.insert(StoreRecord {
            fingerprint: 0x1111,
            name: "counter".into(),
            verdict: StoredVerdict::Correct,
            rounds: 9,
            assertions: vec![],
            certificate: None,
        });
        assert_eq!(store.len(), 2);
        assert_eq!(store.lookup(0x1111).unwrap().rounds, 9);
    }

    #[test]
    fn corrupt_records_are_dropped_not_fatal() {
        let store = sample();
        let text = store.to_text();
        // Flip a byte inside the first record's body.
        let idx = text.find("rounds: 7").unwrap() + "rounds: ".len();
        let mut bytes = text.clone().into_bytes();
        bytes[idx] = b'8';
        let (reparsed, warnings) = ProofStore::parse(std::str::from_utf8(&bytes).unwrap());
        assert_eq!(reparsed.len(), 1, "only the damaged record is dropped");
        assert!(reparsed.lookup(0x1111).is_none());
        assert!(reparsed.lookup(0x2222).is_some());
        assert!(!warnings.is_empty());
    }

    #[test]
    fn truncation_and_bad_versions_cold_start() {
        let text = sample().to_text();
        for corrupt in [
            &text[..text.len() - 5],   // missing `end`
            &text[..text.len() / 2],   // cut mid-record
            "",                        // empty
            "seqver-store v99\nend\n", // future version
            "not a store at all\n",    // garbage
        ] {
            let (store, warnings) = ProofStore::parse(corrupt);
            assert!(store.is_empty(), "cold start expected for {corrupt:?}");
            assert!(store.qcache_entries().is_empty());
            assert!(!warnings.is_empty(), "warning expected for {corrupt:?}");
        }
    }

    #[test]
    fn flipped_fingerprint_is_caught() {
        // A bit flip in the record header would re-home the record under a
        // different program; the checksum covers the fingerprint.
        let text = sample().to_text();
        let flipped = text.replacen("record: 0000000000001111", "record: 0000000000001119", 1);
        let (store, warnings) = ProofStore::parse(&flipped);
        assert!(
            store.lookup(0x1119).is_none(),
            "re-homed record must not load"
        );
        assert!(store.lookup(0x1111).is_none());
        assert!(warnings.iter().any(|w| w.contains("checksum")));
    }

    #[test]
    fn corrupt_qcache_entries_are_dropped() {
        let text = sample().to_text();
        let broken = text.replacen("qcache: ", "qcache: 0000000000000000 x ", 1);
        let (store, warnings) = ProofStore::parse(&broken);
        assert!(store.qcache_entries().len() < 2);
        assert!(!warnings.is_empty());
    }

    #[test]
    fn open_missing_file_is_fresh_and_flush_round_trips() {
        let dir = scratch("fresh");
        let path = dir.join("proofs.store");
        let (mut store, warnings) = ProofStore::open(&path);
        assert!(store.is_empty() && warnings.is_empty());
        store.insert(StoreRecord {
            fingerprint: 42,
            name: "p".into(),
            verdict: StoredVerdict::Correct,
            rounds: 1,
            assertions: vec![atom("x", 0)],
            certificate: None,
        });
        store.flush().unwrap();
        let (reopened, warnings) = ProofStore::open(&path);
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(reopened.records(), store.records());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_appends_survive_reopen_without_compaction() {
        let dir = scratch("wal");
        let path = dir.join("proofs.store");
        let (store, warnings) = ProofStore::open(&path);
        assert!(warnings.is_empty(), "{warnings:?}");
        let shared = SharedStore::new(store);
        let mut last = 0;
        for i in 0..5u64 {
            last = shared.lock().append(record(i + 1, "p", i)).unwrap();
        }
        shared.commit(last).unwrap();
        {
            let store = shared.lock();
            assert_eq!(store.durable_seq(), last);
            assert!(store.journal_bytes() > 0);
            // Snapshot is still the empty one written at open.
            assert_eq!(store.stats().fsyncs, 1, "one group commit for 5 appends");
        }
        drop(shared);
        let (reopened, warnings) = ProofStore::open(&path);
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(reopened.len(), 5, "all journaled records replayed");
        assert_eq!(reopened.stats().replayed_frames, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_folds_and_truncates_and_stale_frames_skip() {
        let dir = scratch("compact");
        let path = dir.join("proofs.store");
        let (store, _) = ProofStore::open(&path);
        let shared = SharedStore::new(store);
        let mut last = 0;
        for i in 0..4u64 {
            last = shared.lock().append(record(i + 1, "p", i)).unwrap();
        }
        shared.commit(last).unwrap();
        let journal_before = std::fs::metadata(journal_path(&path)).unwrap().len();
        assert!(journal_before > 0);
        shared.compact_with_qcache(Vec::new()).unwrap();
        assert_eq!(std::fs::metadata(journal_path(&path)).unwrap().len(), 0);
        // Re-create the pre-truncation journal: its frames are now stale
        // relative to the snapshot's seq mark and must be skipped.
        let frames: String = (0..4u64)
            .map(|i| journal_frame(i + 1, &record(i + 1, "p", i).to_text()))
            .collect();
        std::fs::write(journal_path(&path), frames).unwrap();
        drop(shared);
        let (reopened, warnings) = ProofStore::open(&path);
        assert_eq!(reopened.len(), 4);
        assert_eq!(reopened.stats().stale_frames, 4);
        assert_eq!(reopened.stats().replayed_frames, 0);
        assert!(warnings.iter().any(|w| w.contains("stale")), "{warnings:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_journal_tail_is_truncated_and_prefix_replayed() {
        let dir = scratch("torn");
        let path = dir.join("proofs.store");
        let (store, _) = ProofStore::open(&path);
        let shared = SharedStore::new(store);
        let mut last = 0;
        for i in 0..3u64 {
            last = shared.lock().append(record(i + 1, "p", i)).unwrap();
        }
        shared.commit(last).unwrap();
        drop(shared);
        // Chop the last frame mid-body: only the first two replay, and the
        // file is truncated back to the clean two-frame prefix.
        let jpath = journal_path(&path);
        let bytes = std::fs::read(&jpath).unwrap();
        std::fs::write(&jpath, &bytes[..bytes.len() - 7]).unwrap();
        let (reopened, warnings) = ProofStore::open(&path);
        assert_eq!(reopened.len(), 2);
        assert!(
            warnings.iter().any(|w| w.contains("truncated")),
            "{warnings:?}"
        );
        let replay = replay_journal(&std::fs::read(&jpath).unwrap());
        assert_eq!(replay.frames.len(), 2);
        assert!(replay.torn.is_none(), "tail must be physically gone");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_mode_is_durable_per_append() {
        let dir = scratch("rewrite");
        let path = dir.join("proofs.store");
        let (store, _) = ProofStore::open_with(&path, PersistMode::Rewrite, Arc::default());
        let shared = SharedStore::new(store);
        let seq = shared.lock().append(record(7, "p", 0)).unwrap();
        shared.commit(seq).unwrap(); // no-op: already durable
        drop(shared);
        // No journal frames were written; the snapshot alone carries it.
        let (reopened, warnings) = ProofStore::open(&path);
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.stats().replayed_frames, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_journal_is_replayed_even_without_journal_mode() {
        let dir = scratch("leftover");
        let path = dir.join("proofs.store");
        let (store, _) = ProofStore::open(&path);
        let shared = SharedStore::new(store);
        let seq = shared.lock().append(record(9, "p", 1)).unwrap();
        shared.commit(seq).unwrap();
        drop(shared);
        let (reopened, _) = ProofStore::open_with(&path, PersistMode::Rewrite, Arc::default());
        assert_eq!(reopened.len(), 1, "journaled frame visible to --no-journal");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn needs_compaction_respects_ratio() {
        let dir = scratch("ratio");
        let path = dir.join("proofs.store");
        let (store, _) = ProofStore::open(&path);
        let shared = SharedStore::new(store);
        assert!(
            !shared.needs_compaction(0.0),
            "empty journal never compacts"
        );
        let seq = shared.lock().append(record(1, "p", 0)).unwrap();
        shared.commit(seq).unwrap();
        assert!(shared.needs_compaction(0.0), "ratio 0 compacts on any byte");
        assert!(!shared.needs_compaction(1e9), "huge ratio never compacts");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
