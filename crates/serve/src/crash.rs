//! Deterministic crash-point injection for the durability path.
//!
//! The write-ahead journal's correctness claim — "an acknowledged verdict
//! survives any crash" — is only testable if a test can crash the daemon
//! *at* every interesting instruction boundary, not merely near it. This
//! module names those boundaries ([`CrashSite`]) and lets a test plan an
//! abort at the N-th arrival at a site ([`CrashPlan`]), in the same
//! `SPEC:N` spirit as `smt::resource::FaultPlan` from the fault-injection
//! harness: specs are plain text (`--crash-at post-append:2`), charges are
//! counted deterministically, and the same plan replays the same crash
//! bit for bit.
//!
//! Unlike `FaultPlan`, a tripped crash site does not surface as an error —
//! it calls [`std::process::abort`], because the property under test is
//! what the *next* process finds on disk.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Every named durability site on the journal and compaction paths, in
/// the order the data travels toward stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashSite {
    /// About to stage a record's frame into the journal's pending buffer:
    /// nothing of this record has left memory.
    PreAppend,
    /// Frame staged in the pending buffer, fsync not yet requested: a
    /// crash here loses the frame (it was never written), so the record
    /// must NOT have been acknowledged.
    PostAppend,
    /// Journal write+fsync completed, response not yet sent: the record
    /// is durable but the client never heard so. Supersedes the old
    /// `--crash-after N` (abort after the N-th persisted verdict).
    PostFsync,
    /// Mid-compaction: the new snapshot's bytes are in the temp file but
    /// the temp file is not yet fsynced.
    CompactTmp,
    /// Compaction temp file fsynced, rename not yet issued.
    PreRename,
    /// Snapshot renamed into place, parent directory not yet fsynced and
    /// the journal not yet truncated.
    PostRename,
}

impl CrashSite {
    pub const ALL: [CrashSite; 6] = [
        CrashSite::PreAppend,
        CrashSite::PostAppend,
        CrashSite::PostFsync,
        CrashSite::CompactTmp,
        CrashSite::PreRename,
        CrashSite::PostRename,
    ];

    pub fn name(self) -> &'static str {
        match self {
            CrashSite::PreAppend => "pre-append",
            CrashSite::PostAppend => "post-append",
            CrashSite::PostFsync => "post-fsync",
            CrashSite::CompactTmp => "compact-tmp",
            CrashSite::PreRename => "pre-rename",
            CrashSite::PostRename => "post-rename",
        }
    }

    fn parse(s: &str) -> Result<CrashSite, String> {
        CrashSite::ALL
            .into_iter()
            .find(|site| site.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = CrashSite::ALL.iter().map(|s| s.name()).collect();
                format!("unknown crash site `{s}` (known: {})", names.join(", "))
            })
    }
}

impl fmt::Display for CrashSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic abort plan: `SITE:N[,SITE:N...]` aborts the process the
/// N-th time execution reaches `SITE`. Arrivals are counted per site with
/// atomic counters, so the plan is exact under concurrency: the N-th
/// arrival aborts no matter which thread it is.
#[derive(Debug, Default)]
pub struct CrashPlan {
    /// `(site, arrival)` pairs that abort. Empty plan: never aborts.
    aborts: Vec<(CrashSite, u64)>,
    /// Arrivals seen so far, indexed by `CrashSite as usize`.
    counters: [AtomicU64; 6],
}

impl CrashPlan {
    /// Parses a spec like `post-append:1` or `post-fsync:2,compact-tmp:1`.
    /// Counts are 1-based: `SITE:1` aborts on the first arrival.
    pub fn parse(spec: &str) -> Result<CrashPlan, String> {
        let mut aborts = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (site, count) = part
                .split_once(':')
                .ok_or_else(|| format!("malformed crash spec `{part}` (want SITE:N)"))?;
            let site = CrashSite::parse(site)?;
            let count: u64 = count
                .parse()
                .map_err(|_| format!("invalid crash count `{count}` in `{part}`"))?;
            if count == 0 {
                return Err(format!("crash count must be >= 1 in `{part}`"));
            }
            aborts.push((site, count));
        }
        Ok(CrashPlan {
            aborts,
            counters: Default::default(),
        })
    }

    /// A plan that aborts on the `n`-th arrival at `site`.
    pub fn abort_at(site: CrashSite, n: u64) -> CrashPlan {
        CrashPlan {
            aborts: vec![(site, n.max(1))],
            counters: Default::default(),
        }
    }

    /// `true` when the plan can never fire.
    pub fn is_empty(&self) -> bool {
        self.aborts.is_empty()
    }

    /// The canonical spec text (round-trips through [`CrashPlan::parse`]).
    pub fn spec(&self) -> String {
        let parts: Vec<String> = self
            .aborts
            .iter()
            .map(|(site, n)| format!("{site}:{n}"))
            .collect();
        parts.join(",")
    }

    /// Charges one arrival at `site`; aborts the process if the plan says
    /// this arrival is the one. The abort is announced on stderr first so
    /// a sweep harness can tell an injected crash from an accidental one.
    pub fn hit(&self, site: CrashSite) {
        let arrival = self.counters[site as usize].fetch_add(1, Ordering::SeqCst) + 1;
        if self.aborts.iter().any(|&(s, n)| s == site && n == arrival) {
            eprintln!("crash-point injection: aborting at {site}:{arrival}");
            std::process::abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_and_rejects_junk() {
        let plan = CrashPlan::parse("post-append:1,compact-tmp:3").unwrap();
        assert_eq!(plan.spec(), "post-append:1,compact-tmp:3");
        assert!(!plan.is_empty());
        assert!(CrashPlan::parse("").unwrap().is_empty());
        assert!(CrashPlan::parse("nonsense:1").is_err());
        assert!(CrashPlan::parse("post-append").is_err());
        assert!(CrashPlan::parse("post-append:0").is_err());
        assert!(CrashPlan::parse("post-append:x").is_err());
    }

    #[test]
    fn empty_plan_never_aborts() {
        let plan = CrashPlan::default();
        for site in CrashSite::ALL {
            for _ in 0..10 {
                plan.hit(site); // must return
            }
        }
    }

    #[test]
    fn unmatched_sites_and_earlier_arrivals_return() {
        // The plan targets the 1000th arrival; the first few must return,
        // and unrelated sites must never trip.
        let plan = CrashPlan::abort_at(CrashSite::PreRename, 1000);
        for _ in 0..5 {
            plan.hit(CrashSite::PreRename);
            plan.hit(CrashSite::PostFsync);
        }
    }

    #[test]
    fn site_names_parse_back() {
        for site in CrashSite::ALL {
            let plan = CrashPlan::parse(&format!("{}:2", site.name())).unwrap();
            assert_eq!(plan.spec(), format!("{site}:2"));
        }
    }
}
