//! Determinism of the parallel portfolio's lockstep mode: with
//! `deterministic: true`, [`parallel_verify`] must be a pure function of
//! the program and the engine list — verdict, winner, per-engine round
//! counts and proof sizes identical across repeated runs, regardless of
//! thread scheduling. The determinism contract extends to certificates:
//! the winning certificate must clear the independent checker and its
//! serialized text must be byte-identical across runs.

use seqver::bench_suite;
use seqver::gemcutter::certify::{check_certificate, CertifyMode};
use seqver::gemcutter::portfolio::{parallel_verify, ParallelConfig};
use seqver::gemcutter::verify::{verify, Verdict, VerifierConfig};
use seqver::smt::TermPool;

/// The four-engine portfolio the determinism contract is tested with:
/// three fixed orders plus two seeded random orders.
fn engines() -> Vec<VerifierConfig> {
    vec![
        VerifierConfig::gemcutter_seq(),
        VerifierConfig::gemcutter_lockstep(),
        VerifierConfig::gemcutter_random(1),
        VerifierConfig::gemcutter_random(2),
    ]
}

/// Runs the deterministic parallel portfolio 5 times on `name` and
/// asserts every run reproduces the first one exactly.
fn assert_reproducible(name: &str) {
    let bench = bench_suite::all()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("benchmark {name} not in the suite"));
    let configs = engines();
    let pcfg = ParallelConfig {
        deterministic: true,
        ..ParallelConfig::default()
    };

    let mut reference = None;
    for run in 0..5 {
        let mut pool = TermPool::new();
        let p = bench.compile(&mut pool);
        let result = parallel_verify(&pool, &p, &configs, &pcfg);
        let fingerprint = (
            result.outcome.verdict.clone(),
            result.winner.clone(),
            result.engines.clone(),
        );
        match &reference {
            None => reference = Some(fingerprint),
            Some(first) => assert_eq!(*first, fingerprint, "{name}: run {run} diverged from run 0"),
        }
    }
}

#[test]
fn deterministic_parallel_is_reproducible_on_peterson() {
    assert_reproducible("peterson");
}

#[test]
fn deterministic_parallel_is_reproducible_on_dekker() {
    assert_reproducible("dekker");
}

/// In deterministic mode, the winning certificate is part of the
/// reproducibility contract: it must exist, clear the independent
/// checker, and serialize byte-identically across 5 runs.
#[test]
fn deterministic_parallel_certificates_check_and_are_stable() {
    let bench = bench_suite::all()
        .into_iter()
        .find(|b| b.name == "peterson")
        .expect("peterson in the suite");
    let configs = vec![
        VerifierConfig::gemcutter_seq(),
        VerifierConfig::gemcutter_lockstep(),
    ];
    let pcfg = ParallelConfig {
        deterministic: true,
        ..ParallelConfig::default()
    };
    let mut reference: Option<String> = None;
    for run in 0..5 {
        let mut pool = TermPool::new();
        let p = bench.compile(&mut pool);
        let result = parallel_verify(&pool, &p, &configs, &pcfg);
        assert_eq!(result.outcome.verdict, Verdict::Correct, "run {run}");
        let cert = result
            .outcome
            .certificate
            .unwrap_or_else(|| panic!("run {run}: no certificate"));
        let report = check_certificate(&mut pool, &p, &cert, CertifyMode::Full);
        assert!(report.ok, "run {run}: certificate rejected: {report}");
        let text = cert.to_text();
        match &reference {
            None => reference = Some(text),
            Some(first) => assert_eq!(*first, text, "run {run}: certificate text diverged"),
        }
    }
}

/// `--dfs-threads` must not be observable in results: the parallel DFS
/// is a scout whose conclusive outcomes are re-derived on the canonical
/// sequential path, so verdict (including the counterexample trace),
/// round count, proof size and serialized certificate text must be
/// byte-identical at 1, 2 and 4 workers.
fn assert_dfs_threads_identity(name: &str) {
    let bench = bench_suite::all()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("benchmark {name} not in the suite"));
    let mut reference = None;
    for threads in [1usize, 2, 4] {
        let mut pool = TermPool::new();
        let p = bench.compile(&mut pool);
        let config = VerifierConfig::gemcutter_seq().with_dfs_threads(threads);
        let outcome = verify(&mut pool, &p, &config);
        let fingerprint = (
            outcome.verdict.clone(),
            outcome.stats.rounds,
            outcome.stats.proof_size,
            outcome.certificate.as_ref().map(|c| c.to_text()),
        );
        match &reference {
            None => reference = Some(fingerprint),
            Some(first) => assert_eq!(
                *first, fingerprint,
                "{name}: dfs-threads {threads} diverged from the sequential run"
            ),
        }
    }
}

#[test]
fn dfs_threads_are_unobservable_on_peterson() {
    assert_dfs_threads_identity("peterson");
}

#[test]
fn dfs_threads_are_unobservable_on_dekker_bug() {
    assert_dfs_threads_identity("dekker-bug");
}

/// The deterministic portfolio contract survives per-engine parallel DFS:
/// the whole-portfolio fingerprint (verdict, winner, per-engine reports)
/// is identical whether each engine checks its proof with 1, 2 or 4 DFS
/// workers.
#[test]
fn deterministic_parallel_is_stable_across_dfs_threads() {
    let bench = bench_suite::all()
        .into_iter()
        .find(|b| b.name == "peterson")
        .expect("peterson in the suite");
    let pcfg = ParallelConfig {
        deterministic: true,
        ..ParallelConfig::default()
    };
    let mut reference = None;
    for threads in [1usize, 2, 4] {
        let configs: Vec<VerifierConfig> = engines()
            .into_iter()
            .map(|c| c.with_dfs_threads(threads))
            .collect();
        let mut pool = TermPool::new();
        let p = bench.compile(&mut pool);
        let result = parallel_verify(&pool, &p, &configs, &pcfg);
        let fingerprint = (
            result.outcome.verdict.clone(),
            result.winner.clone(),
            result.engines.clone(),
            result.outcome.certificate.as_ref().map(|c| c.to_text()),
        );
        match &reference {
            None => reference = Some(fingerprint),
            Some(first) => assert_eq!(
                *first, fingerprint,
                "dfs-threads {threads} changed the deterministic portfolio fingerprint"
            ),
        }
    }
}

/// The seq and lockstep engines each certify their own single-engine
/// runs: different reductions, different proofs — both independently
/// checkable on the same program.
#[test]
fn seq_and_lockstep_certificates_both_check() {
    let bench = bench_suite::all()
        .into_iter()
        .find(|b| b.name == "peterson")
        .expect("peterson in the suite");
    for config in [
        VerifierConfig::gemcutter_seq(),
        VerifierConfig::gemcutter_lockstep(),
    ] {
        let mut pool = TermPool::new();
        let p = bench.compile(&mut pool);
        let outcome = verify(&mut pool, &p, &config);
        assert_eq!(outcome.verdict, Verdict::Correct, "{}", config.name);
        let cert = outcome
            .certificate
            .unwrap_or_else(|| panic!("{}: no certificate", config.name));
        let report = check_certificate(&mut pool, &p, &cert, CertifyMode::Full);
        assert!(report.ok, "{}: certificate rejected: {report}", config.name);
    }
}
