//! **Service warm-start study**: the same corpus submitted twice to a
//! `seqver serve` daemon over loopback — once against an empty proof
//! store, then again after a simulated restart on the persisted store.
//! The second pass must reproduce every verdict bit for bit while serving
//! definitive results straight from the store; the wall-clock ratio is
//! the service-mode payoff of crash-safe persistence. Results are emitted
//! to `BENCH_serve.json` for the perf trajectory.
//!
//! Run: `cargo run --release -p bench --bin service_warm`
//! (`SEQVER_QUICK=1` restricts the corpus, as everywhere in the harness.)

use bench::{corpus, fmt_time};
use serve::client::Client;
use serve::proto::{Status, VerifyOpts};
use serve::server::{ServeConfig, Server};
use std::io::Write;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// One daemon lifetime: bind on the store, serve one full corpus pass,
/// drain. Returns the verdict lines and per-pass counters.
struct Pass {
    verdicts: Vec<String>,
    store_hits: u64,
    warm_starts: u64,
    gave_up: u64,
    time_s: f64,
}

fn run_pass(store: &std::path::Path, programs: &[(String, String)]) -> Pass {
    let server = Server::bind(ServeConfig {
        store_path: Some(store.to_path_buf()),
        request_timeout: Duration::from_secs(120),
        ..ServeConfig::default()
    })
    .expect("bind");
    for w in server.store_warnings() {
        eprintln!("warning: {w}");
    }
    let addr = server.local_addr().expect("addr").to_string();
    let shutdown = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run());

    let mut client =
        Client::connect_with_timeout(&addr, Duration::from_secs(300)).expect("connect");
    let start = Instant::now();
    let mut pass = Pass {
        verdicts: Vec::new(),
        store_hits: 0,
        warm_starts: 0,
        gave_up: 0,
        time_s: 0.0,
    };
    for (name, source) in programs {
        let resp = client
            .verify_source(name, source, VerifyOpts::default())
            .expect("response");
        assert_eq!(resp.status, Some(Status::Ok), "{name}: {:?}", resp.reason);
        if resp.store_hit {
            pass.store_hits += 1;
        }
        if resp.warm_assertions > 0 {
            pass.warm_starts += 1;
        }
        if resp.verdict_line().starts_with("GAVE-UP") {
            pass.gave_up += 1;
        }
        pass.verdicts.push(resp.verdict_line());
    }
    pass.time_s = start.elapsed().as_secs_f64();
    let _ = client.shutdown();
    drop(client);
    shutdown.store(true, Ordering::Relaxed);
    handle.join().expect("server thread").expect("clean drain");
    pass
}

fn main() {
    let programs: Vec<(String, String)> =
        corpus().into_iter().map(|b| (b.name, b.source)).collect();
    let quick = std::env::var("SEQVER_QUICK").is_ok();
    let dir = std::env::temp_dir().join(format!("seqver-service-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let store = dir.join("proofs.store");

    println!(
        "service warm-start study ({} corpus, {} programs)",
        if quick { "quick" } else { "full" },
        programs.len()
    );
    let cold = run_pass(&store, &programs);
    println!(
        "  cold:  {}  (store-hits {}, warm-starts {}, gave-up {})",
        fmt_time(cold.time_s),
        cold.store_hits,
        cold.warm_starts,
        cold.gave_up
    );
    let warm = run_pass(&store, &programs);
    println!(
        "  warm:  {}  (store-hits {}, warm-starts {}, gave-up {})",
        fmt_time(warm.time_s),
        warm.store_hits,
        warm.warm_starts,
        warm.gave_up
    );

    let identity = cold.verdicts == warm.verdicts;
    assert!(identity, "warm pass changed a verdict");
    // Give-ups are deliberately never persisted, so only definitive
    // verdicts can hit the store.
    let definitive = programs.len() as u64 - cold.gave_up;
    let hit_rate = if definitive == 0 {
        0.0
    } else {
        warm.store_hits as f64 / definitive as f64
    };
    let speedup = if warm.time_s > 0.0 {
        cold.time_s / warm.time_s
    } else {
        f64::NAN
    };
    println!("  identity: {identity}   warm hit rate {hit_rate:.4}   speedup {speedup:.2}x");
    assert!(
        warm.store_hits >= definitive,
        "every definitive verdict must be a warm store hit"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"corpus\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    json.push_str(&format!("  \"benchmarks\": {},\n", programs.len()));
    json.push_str(&format!("  \"identity\": {identity},\n"));
    json.push_str(&format!("  \"cold_time_s\": {:.6},\n", cold.time_s));
    json.push_str(&format!("  \"warm_time_s\": {:.6},\n", warm.time_s));
    json.push_str(&format!("  \"speedup\": {speedup:.4},\n"));
    json.push_str(&format!("  \"gave_up\": {},\n", cold.gave_up));
    json.push_str(&format!("  \"warm_store_hits\": {},\n", warm.store_hits));
    json.push_str(&format!("  \"warm_hit_rate\": {hit_rate:.4}\n"));
    json.push_str("}\n");
    let mut f = std::fs::File::create("BENCH_serve.json").expect("create BENCH_serve.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_serve.json");
    println!("  wrote BENCH_serve.json");
    let _ = std::fs::remove_dir_all(&dir);
}
