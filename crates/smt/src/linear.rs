//! Linear integer expressions and constraints — the atom language of the
//! solver.
//!
//! Program expressions lower to [`LinExpr`] (an integer-coefficient linear
//! combination of variables plus a constant); atomic formulas are
//! [`LinearConstraint`]s of the form `e ≤ 0` or `e = 0`. Strict
//! inequalities and negations are eliminated at construction using the
//! integrality of the variables (`¬(e ≤ 0) ⇔ 1 − e ≤ 0`), so downstream
//! components never see a negated atom.

use crate::rational::gcd;
use std::fmt;

/// An interned integer variable.
///
/// Variables are created by [`crate::term::TermPool::var`] /
/// [`crate::term::TermPool::fresh_var`]; the id indexes the pool's name
/// table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The variable's index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A linear expression `Σ cᵢ·xᵢ + k` with `i128` coefficients.
///
/// Terms are kept sorted by variable with no zero coefficients, so equal
/// expressions are structurally equal.
///
/// # Example
///
/// ```
/// use smt::linear::{LinExpr, VarId};
///
/// let x = VarId(0);
/// let y = VarId(1);
/// let e = LinExpr::var(x).add(&LinExpr::var(y).scale(2)).add(&LinExpr::constant(3));
/// assert_eq!(e.coeff(x), 1);
/// assert_eq!(e.coeff(y), 2);
/// assert_eq!(e.constant_term(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    /// `(variable, coefficient)`, sorted by variable, coefficients nonzero.
    terms: Vec<(VarId, i128)>,
    constant: i128,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// The constant expression `k`.
    pub fn constant(k: i128) -> LinExpr {
        LinExpr {
            terms: Vec::new(),
            constant: k,
        }
    }

    /// The expression `x`.
    pub fn var(x: VarId) -> LinExpr {
        LinExpr {
            terms: vec![(x, 1)],
            constant: 0,
        }
    }

    /// Builds an expression from raw parts; terms are normalized.
    pub fn from_terms(terms: impl IntoIterator<Item = (VarId, i128)>, constant: i128) -> LinExpr {
        let mut e = LinExpr::constant(constant);
        for (v, c) in terms {
            e.add_term(v, c);
        }
        e
    }

    /// The coefficient of `x` (zero if absent).
    pub fn coeff(&self, x: VarId) -> i128 {
        self.terms
            .binary_search_by_key(&x, |&(v, _)| v)
            .map(|i| self.terms[i].1)
            .unwrap_or(0)
    }

    /// The constant part `k`.
    pub fn constant_term(&self) -> i128 {
        self.constant
    }

    /// The `(variable, coefficient)` pairs in variable order.
    pub fn terms(&self) -> &[(VarId, i128)] {
        &self.terms
    }

    /// `true` if the expression is a constant (no variables).
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// The variables with nonzero coefficient, in order.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.terms.iter().map(|&(v, _)| v)
    }

    /// `true` if `x` occurs with nonzero coefficient.
    pub fn mentions(&self, x: VarId) -> bool {
        self.coeff(x) != 0
    }

    fn add_term(&mut self, x: VarId, c: i128) {
        if c == 0 {
            return;
        }
        match self.terms.binary_search_by_key(&x, |&(v, _)| v) {
            Ok(i) => {
                self.terms[i].1 += c;
                if self.terms[i].1 == 0 {
                    self.terms.remove(i);
                }
            }
            Err(i) => self.terms.insert(i, (x, c)),
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.constant += other.constant;
        for &(v, c) in &other.terms {
            out.add_term(v, c);
        }
        out
    }

    /// `self - other`.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(-1))
    }

    /// `c · self`.
    pub fn scale(&self, c: i128) -> LinExpr {
        if c == 0 {
            return LinExpr::zero();
        }
        LinExpr {
            terms: self.terms.iter().map(|&(v, k)| (v, k * c)).collect(),
            constant: self.constant * c,
        }
    }

    /// Replaces `x` by `replacement` (which must not mention `x`).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `replacement` mentions `x`.
    pub fn substitute(&self, x: VarId, replacement: &LinExpr) -> LinExpr {
        debug_assert!(
            !replacement.mentions(x),
            "substitution must eliminate the variable"
        );
        let c = self.coeff(x);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.add_term(x, -c);
        out.add(&replacement.scale(c))
    }

    /// Renames variables through `f` (used for SSA indexing). `f` must be
    /// injective on the variables of `self`.
    pub fn rename(&self, mut f: impl FnMut(VarId) -> VarId) -> LinExpr {
        LinExpr::from_terms(self.terms.iter().map(|&(v, c)| (f(v), c)), self.constant)
    }

    /// Evaluates under `value`, a total assignment of the mentioned vars.
    pub fn eval(&self, mut value: impl FnMut(VarId) -> i128) -> i128 {
        self.terms.iter().map(|&(v, c)| c * value(v)).sum::<i128>() + self.constant
    }

    /// The gcd of the variable coefficients (0 for constants).
    pub fn coeff_gcd(&self) -> i128 {
        self.terms.iter().fold(0, |g, &(_, c)| gcd(g, c))
    }
}

impl fmt::Debug for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "{}", self.constant);
        }
        for (i, &(v, c)) in self.terms.iter().enumerate() {
            if i == 0 {
                if c == 1 {
                    write!(f, "{v:?}")?;
                } else if c == -1 {
                    write!(f, "-{v:?}")?;
                } else {
                    write!(f, "{c}*{v:?}")?;
                }
            } else if c > 0 {
                if c == 1 {
                    write!(f, " + {v:?}")?;
                } else {
                    write!(f, " + {c}*{v:?}")?;
                }
            } else if c == -1 {
                write!(f, " - {v:?}")?;
            } else {
                write!(f, " - {}*{v:?}", -c)?;
            }
        }
        match self.constant.signum() {
            1 => write!(f, " + {}", self.constant),
            -1 => write!(f, " - {}", -self.constant),
            _ => Ok(()),
        }
    }
}

/// Relation of a [`LinearConstraint`]: `e ≤ 0` or `e = 0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rel {
    /// `expr ≤ 0`.
    Le0,
    /// `expr = 0`.
    Eq0,
}

/// The result of normalizing a constraint: trivially true/false constraints
/// collapse to booleans.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum NormalizedConstraint {
    /// The constraint holds for every assignment.
    True,
    /// The constraint holds for no assignment.
    False,
    /// A nontrivial constraint.
    Constraint(LinearConstraint),
}

/// An atomic linear constraint `expr REL 0` over integer variables.
///
/// Constructed in *normalized* form: coefficients are divided by their gcd
/// (with floor-tightening of the constant for `≤`, and a divisibility check
/// for `=` that can expose unsatisfiability).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LinearConstraint {
    expr: LinExpr,
    rel: Rel,
}

impl LinearConstraint {
    /// Normalizes `expr rel 0`.
    ///
    /// Tightening uses integrality: `2x − 3 ≤ 0` becomes `x − 1 ≤ 0`, and
    /// `2x − 3 = 0` becomes [`NormalizedConstraint::False`].
    ///
    /// # Example
    ///
    /// ```
    /// use smt::linear::{LinExpr, LinearConstraint, NormalizedConstraint, Rel, VarId};
    ///
    /// let x = VarId(0);
    /// let e = LinExpr::var(x).scale(2).add(&LinExpr::constant(-3));
    /// match LinearConstraint::new(e, Rel::Le0) {
    ///     NormalizedConstraint::Constraint(c) => {
    ///         assert_eq!(c.expr().coeff(x), 1);
    ///         assert_eq!(c.expr().constant_term(), -1); // x ≤ 3/2 tightens to x ≤ 1
    ///     }
    ///     other => panic!("unexpected {other:?}"),
    /// }
    /// ```
    #[allow(clippy::new_ret_no_self)] // normalization can collapse to ⊤/⊥
    pub fn new(expr: LinExpr, rel: Rel) -> NormalizedConstraint {
        if expr.is_constant() {
            let k = expr.constant_term();
            let holds = match rel {
                Rel::Le0 => k <= 0,
                Rel::Eq0 => k == 0,
            };
            return if holds {
                NormalizedConstraint::True
            } else {
                NormalizedConstraint::False
            };
        }
        let g = expr.coeff_gcd();
        debug_assert!(g > 0);
        let expr = if g > 1 {
            match rel {
                Rel::Le0 => {
                    // Σ (cᵢ/g)·xᵢ ≤ floor(−k/g) · (−1): e ≤ 0 ⇔ Σcx ≤ −k
                    // ⇔ Σ(c/g)x ≤ floor(−k/g) ⇔ Σ(c/g)x − floor(−k/g) ≤ 0.
                    let k = expr.constant_term();
                    let tightened = -((-k).div_euclid(g));
                    LinExpr::from_terms(expr.terms().iter().map(|&(v, c)| (v, c / g)), tightened)
                }
                Rel::Eq0 => {
                    let k = expr.constant_term();
                    if k.rem_euclid(g) != 0 {
                        return NormalizedConstraint::False;
                    }
                    LinExpr::from_terms(expr.terms().iter().map(|&(v, c)| (v, c / g)), k / g)
                }
            }
        } else {
            expr
        };
        NormalizedConstraint::Constraint(LinearConstraint { expr, rel })
    }

    /// The negation `¬(expr rel 0)`, exact over the integers.
    ///
    /// `¬(e ≤ 0)` is the single constraint `1 − e ≤ 0`; `¬(e = 0)` is the
    /// *disjunction* `e + 1 ≤ 0 ∨ 1 − e ≤ 0`, hence a `Vec`.
    pub fn negate(&self) -> Vec<NormalizedConstraint> {
        match self.rel {
            Rel::Le0 => {
                let neg = LinExpr::constant(1).sub(&self.expr);
                vec![LinearConstraint::new(neg, Rel::Le0)]
            }
            Rel::Eq0 => {
                let lt = self.expr.add(&LinExpr::constant(1));
                let gt = LinExpr::constant(1).sub(&self.expr);
                vec![
                    LinearConstraint::new(lt, Rel::Le0),
                    LinearConstraint::new(gt, Rel::Le0),
                ]
            }
        }
    }

    /// The left-hand expression.
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// The relation.
    pub fn rel(&self) -> Rel {
        self.rel
    }

    /// Evaluates the constraint under a total assignment.
    pub fn eval(&self, value: impl FnMut(VarId) -> i128) -> bool {
        let v = self.expr.eval(value);
        match self.rel {
            Rel::Le0 => v <= 0,
            Rel::Eq0 => v == 0,
        }
    }

    /// Substitutes `x := replacement` and re-normalizes.
    pub fn substitute(&self, x: VarId, replacement: &LinExpr) -> NormalizedConstraint {
        LinearConstraint::new(self.expr.substitute(x, replacement), self.rel)
    }

    /// Renames variables through `f` (must be injective on the constraint's
    /// variables).
    pub fn rename(&self, f: impl FnMut(VarId) -> VarId) -> LinearConstraint {
        LinearConstraint {
            expr: self.expr.rename(f),
            rel: self.rel,
        }
    }
}

impl fmt::Debug for LinearConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rel = match self.rel {
            Rel::Le0 => "<=",
            Rel::Eq0 => "==",
        };
        write!(f, "{:?} {rel} 0", self.expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> VarId {
        VarId(0)
    }
    fn y() -> VarId {
        VarId(1)
    }

    #[test]
    fn expr_arithmetic_and_normal_form() {
        let e = LinExpr::var(x())
            .add(&LinExpr::var(x()))
            .sub(&LinExpr::var(x()).scale(2));
        assert!(e.is_constant());
        assert_eq!(e, LinExpr::zero());
        let f = LinExpr::var(x())
            .add(&LinExpr::var(y()).scale(-3))
            .add(&LinExpr::constant(7));
        assert_eq!(f.coeff(x()), 1);
        assert_eq!(f.coeff(y()), -3);
        assert_eq!(f.coeff(VarId(9)), 0);
    }

    #[test]
    fn substitute_eliminates() {
        // x + 2y, x := y - 1  →  3y - 1
        let e = LinExpr::var(x()).add(&LinExpr::var(y()).scale(2));
        let r = LinExpr::var(y()).sub(&LinExpr::constant(1));
        let s = e.substitute(x(), &r);
        assert_eq!(s.coeff(y()), 3);
        assert_eq!(s.constant_term(), -1);
        assert!(!s.mentions(x()));
    }

    #[test]
    fn eval_expr() {
        let e = LinExpr::from_terms([(x(), 2), (y(), -1)], 5);
        assert_eq!(e.eval(|v| if v == x() { 3 } else { 4 }), 2 * 3 - 4 + 5);
    }

    #[test]
    fn constraint_tightening_le() {
        // 2x - 3 <= 0  ⇔  x <= 1
        let e = LinExpr::var(x()).scale(2).sub(&LinExpr::constant(3));
        let NormalizedConstraint::Constraint(c) = LinearConstraint::new(e, Rel::Le0) else {
            panic!("expected constraint")
        };
        assert_eq!(c.expr().coeff(x()), 1);
        assert_eq!(c.expr().constant_term(), -1);
    }

    #[test]
    fn constraint_divisibility_eq() {
        // 2x - 3 = 0 is unsatisfiable over ℤ.
        let e = LinExpr::var(x()).scale(2).sub(&LinExpr::constant(3));
        assert_eq!(
            LinearConstraint::new(e, Rel::Eq0),
            NormalizedConstraint::False
        );
        // 2x - 4 = 0  ⇔  x - 2 = 0
        let e = LinExpr::var(x()).scale(2).sub(&LinExpr::constant(4));
        let NormalizedConstraint::Constraint(c) = LinearConstraint::new(e, Rel::Eq0) else {
            panic!("expected constraint")
        };
        assert_eq!(c.expr().constant_term(), -2);
    }

    #[test]
    fn trivial_constraints_collapse() {
        assert_eq!(
            LinearConstraint::new(LinExpr::constant(-5), Rel::Le0),
            NormalizedConstraint::True
        );
        assert_eq!(
            LinearConstraint::new(LinExpr::constant(5), Rel::Le0),
            NormalizedConstraint::False
        );
        assert_eq!(
            LinearConstraint::new(LinExpr::zero(), Rel::Eq0),
            NormalizedConstraint::True
        );
    }

    #[test]
    fn negation_is_exact_over_integers() {
        // ¬(x ≤ 0) = (1 - x ≤ 0), i.e. x ≥ 1.
        let NormalizedConstraint::Constraint(c) =
            LinearConstraint::new(LinExpr::var(x()), Rel::Le0)
        else {
            panic!()
        };
        let neg = c.negate();
        assert_eq!(neg.len(), 1);
        let NormalizedConstraint::Constraint(n) = &neg[0] else {
            panic!()
        };
        assert!(n.eval(|_| 1));
        assert!(!n.eval(|_| 0));
        // Exactness: for every integer value, exactly one of c, ¬c holds.
        for v in -3..=3 {
            assert_ne!(c.eval(|_| v), n.eval(|_| v));
        }
    }

    #[test]
    fn negation_of_equality_splits() {
        let NormalizedConstraint::Constraint(c) =
            LinearConstraint::new(LinExpr::var(x()).sub(&LinExpr::constant(2)), Rel::Eq0)
        else {
            panic!()
        };
        let neg = c.negate();
        assert_eq!(neg.len(), 2);
        for v in -1..=5 {
            let holds_neg = neg.iter().any(|n| match n {
                NormalizedConstraint::Constraint(n) => n.eval(|_| v),
                NormalizedConstraint::True => true,
                NormalizedConstraint::False => false,
            });
            assert_eq!(holds_neg, v != 2, "at {v}");
        }
    }

    #[test]
    fn debug_formats() {
        let e = LinExpr::from_terms([(x(), 1), (y(), -2)], 3);
        assert_eq!(format!("{e:?}"), "v0 - 2*v1 + 3");
        assert_eq!(format!("{:?}", LinExpr::zero()), "0");
    }
}
