//! Cost of the commutativity oracle levels (§8: a cheap syntactic check
//! backed by an SMT-based semantic/conditional check).

use automata::bitset::BitSet;
use automata::dfa::DfaBuilder;
use criterion::{criterion_group, criterion_main, Criterion};
use program::commutativity::{CommutativityLevel, CommutativityOracle};
use program::concurrent::{LetterId, Program};
use program::stmt::{SimpleStmt, Statement};
use program::thread::{Thread, ThreadId};
use smt::linear::LinExpr;
use smt::term::TermPool;
use std::hint::black_box;

/// Two increment statements of the same shared counter (commute only
/// semantically) plus the §2 enter/exit pair (commute only conditionally).
fn setup(pool: &mut TermPool) -> Program {
    let p = pool.var("pendingIo");
    let ev = pool.var("stoppingEvent");
    let mut b = Program::builder("bench");
    b.add_global(p, 1);
    b.add_global(ev, 0);
    let enter0 = b.add_statement(Statement::simple(
        ThreadId(0),
        "enter",
        SimpleStmt::Assign(p, LinExpr::var(p).add(&LinExpr::constant(1))),
        pool,
    ));
    let p_zero = pool.eq_const(p, 0);
    let p_nonzero = pool.not(p_zero);
    let dec = LinExpr::var(p).sub(&LinExpr::constant(1));
    let exit1 = b.add_statement(Statement::atomic(
        ThreadId(1),
        "exit",
        vec![
            vec![
                SimpleStmt::Assign(p, dec.clone()),
                SimpleStmt::Assume(p_zero),
                SimpleStmt::Assign(ev, LinExpr::constant(1)),
            ],
            vec![SimpleStmt::Assign(p, dec), SimpleStmt::Assume(p_nonzero)],
        ],
        pool,
    ));
    for l in [enter0, exit1] {
        let mut cfg = DfaBuilder::new();
        let entry = cfg.add_state(false);
        let exit_loc = cfg.add_state(true);
        cfg.add_transition(entry, l, exit_loc);
        b.add_thread(Thread::new("t", cfg.build(entry), BitSet::new(2)));
    }
    b.build(pool)
}

fn bench_oracle(c: &mut Criterion) {
    let mut g = c.benchmark_group("commutativity");
    g.sample_size(20);
    g.bench_function("syntactic_miss", |b| {
        b.iter(|| {
            let mut pool = TermPool::new();
            let p = setup(&mut pool);
            let mut oracle = CommutativityOracle::new(CommutativityLevel::Syntactic);
            black_box(oracle.commute(&mut pool, &p, LetterId(0), LetterId(1)))
        })
    });
    g.bench_function("semantic_uncached", |b| {
        b.iter(|| {
            let mut pool = TermPool::new();
            let p = setup(&mut pool);
            let mut oracle = CommutativityOracle::new(CommutativityLevel::Semantic);
            black_box(oracle.commute(&mut pool, &p, LetterId(0), LetterId(1)))
        })
    });
    g.bench_function("conditional_uncached", |b| {
        b.iter(|| {
            let mut pool = TermPool::new();
            let p = setup(&mut pool);
            let pending = pool.var("pendingIo");
            let gt1 = pool.ge_const(pending, 2);
            let mut oracle = CommutativityOracle::new(CommutativityLevel::Semantic);
            black_box(oracle.commute_under(&mut pool, &p, gt1, LetterId(0), LetterId(1)))
        })
    });
    g.bench_function("semantic_cached", |b| {
        let mut pool = TermPool::new();
        let p = setup(&mut pool);
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Semantic);
        oracle.commute(&mut pool, &p, LetterId(0), LetterId(1));
        b.iter(|| black_box(oracle.commute(&mut pool, &p, LetterId(0), LetterId(1))))
    });
    g.finish();
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
