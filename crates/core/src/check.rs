//! The on-the-fly proof check — Algorithm 2 (§7.2).
//!
//! A DFS over states `(q, Φ, S, ctx)` — product location, Floyd/Hoare
//! assertion set, sleep set, preference-order context — that
//! simultaneously constructs the reduction `(S⋖(P))↓πS` and checks that
//! the proof candidate covers it:
//!
//! * exploration is restricted to a weakly persistent membrane (π);
//! * sleeping letters are skipped, and successor sleep sets use
//!   **proof-sensitive commutativity** `a ↷↷_φ b` with `φ = ⋀Φ`;
//! * states whose assertion conjunction is unsatisfiable are *covered* —
//!   every extension is infeasible — and pruned;
//! * a state from which no counterexample is reachable is recorded in a
//!   cross-round **useless-state cache**; later rounds skip any state with
//!   the same `(q, S, ctx)` and a superset of assertions (sound by
//!   monotonicity of proof-sensitive commutativity, §7.2).

use crate::govern::{Category, GiveUp};
use crate::proof::{ProofAutomaton, ProofStateId};
use automata::bitset::BitSet;
use program::commutativity::CommutativityOracle;
use program::concurrent::{LetterId, ProductState, Program, Spec};
use reduction::order::{OrderContext, PreferenceOrder};
use reduction::persistent::{MembraneMode, PersistentSets};
use smt::term::{TermId, TermPool};
use std::collections::HashMap;

/// Result of one proof-check round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckResult {
    /// The proof covers the entire reduction: the program is correct.
    Proven,
    /// A trace of the reduction not covered by the proof.
    Counterexample(Vec<LetterId>),
    /// The state budget was exhausted.
    LimitReached,
    /// The round was aborted by the pool's resource governor: deadline,
    /// step budget, cooperative cancellation (another portfolio member
    /// concluded) or an injected fault. The give-up carries the cause.
    Interrupted(GiveUp),
}

/// Per-round exploration counters (the paper's memory proxy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Distinct `(q, Φ, S, ctx)` states visited this round.
    pub visited: usize,
    /// States skipped thanks to the cross-round useless-state cache.
    pub cache_skips: usize,
    /// Useless-cache probes issued (hits are `cache_skips`).
    pub useless_probes: usize,
    /// Useless-cache entries after the round (a gauge, not a delta).
    pub useless_len: usize,
    /// Work-stealing events between parallel DFS workers (0 sequentially).
    pub steals: usize,
    /// Tasks processed by parallel DFS workers (0 on the sequential path).
    pub par_tasks: usize,
    /// Tasks processed by the busiest parallel worker — together with
    /// `par_tasks` this measures load balance (ideal: `par_tasks / N`).
    pub max_worker_tasks: usize,
}

/// Switches for the proof check.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Apply sleep sets.
    pub use_sleep: bool,
    /// Apply weakly persistent membranes.
    pub use_persistent: bool,
    /// Use `⋀Φ` as the commutativity condition in sleep-set computation.
    pub proof_sensitive: bool,
    /// The per-round state budget: the proof-check DFS aborts after
    /// visiting this many states, and the certificate recording re-walk
    /// aborts after [`RECORD_VISITED_HEADROOM`]× as many (it takes no
    /// useless-cache skips, so it can legitimately need more states than
    /// the check did). Both walks also charge `Category::DfsStates` per
    /// state, so the governor's run-wide budget is the ultimate
    /// authority; this field is the per-round cap.
    pub max_visited: usize,
    /// Worker threads for the proof-check DFS; `1` (the default) runs the
    /// sequential Algorithm 2 code path byte-for-byte.
    pub dfs_threads: usize,
    /// Probe the useless-state cache but record no new entries. Test and
    /// measurement knob: with marking frozen, the set of states a round
    /// visits is schedule-independent, so parallel and sequential rounds
    /// can be compared for exact visited-set equality.
    pub freeze_useless: bool,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig {
            use_sleep: true,
            use_persistent: true,
            proof_sensitive: true,
            max_visited: usize::MAX,
            dfs_threads: 1,
            freeze_useless: false,
        }
    }
}

/// Cross-round cache of useless states (§7.2).
///
/// A state is *useless* when no counterexample is reachable from it under
/// the current (hence any stronger) proof. Entries are bucketed by `q`
/// and then `ctx`, so the per-visit probe on the DFS hot path borrows its
/// way to one small bucket — no keys are cloned and no unrelated marked
/// state is scanned. Within a bucket, a new state is skipped when some
/// recorded entry has the same sleep set and an assertion subset.
#[derive(Clone, Debug, Default)]
pub struct UselessCache {
    map: HashMap<ProductState, HashMap<OrderContext, Vec<UselessEntry>>>,
}

/// One recorded useless state within a `(q, ctx)` bucket: its sleep set
/// and the (sorted) proof-assertion indices it was useless under.
type UselessEntry = (BitSet, Vec<u32>);

impl UselessCache {
    /// An empty cache.
    pub fn new() -> UselessCache {
        UselessCache::default()
    }

    /// Total recorded entries.
    pub fn len(&self) -> usize {
        self.map
            .values()
            .flat_map(|by_ctx| by_ctx.values())
            .map(Vec::len)
            .sum()
    }

    /// `true` if no entries are recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub(crate) fn is_useless(
        &self,
        q: &ProductState,
        sleep: &BitSet,
        ctx: OrderContext,
        assertions: &[u32],
    ) -> bool {
        self.map
            .get(q)
            .and_then(|by_ctx| by_ctx.get(&ctx))
            .is_some_and(|entries| {
                entries
                    .iter()
                    .any(|(s, set)| s == sleep && is_subset(set, assertions))
            })
    }

    pub(crate) fn mark(
        &mut self,
        q: ProductState,
        sleep: BitSet,
        ctx: OrderContext,
        assertions: Vec<u32>,
    ) {
        let entry = self.map.entry(q).or_default().entry(ctx).or_default();
        // Keep only minimal sets per sleep set.
        if entry
            .iter()
            .any(|(s, set)| *s == sleep && is_subset(set, &assertions))
        {
            return;
        }
        entry.retain(|(s, set)| !(*s == sleep && is_subset(&assertions, set)));
        entry.push((sleep, assertions));
    }
}

/// Sorted-slice subset test.
fn is_subset(small: &[u32], big: &[u32]) -> bool {
    let mut it = big.iter();
    'outer: for &x in small {
        for &y in it.by_ref() {
            match y.cmp(&x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum VisitStatus {
    OnStack,
    /// Fully explored, no counterexample reachable, no edge into the stack.
    DoneClean,
    /// Fully explored without counterexample, but the verdict depends on a
    /// state that was still on the stack (possible cycle) — not cacheable.
    DoneTainted,
}

struct Frame {
    q: ProductState,
    phi: ProofStateId,
    sleep: BitSet,
    ctx: OrderContext,
    /// Letter taken from the parent to reach this frame.
    via: Option<LetterId>,
    explore: Vec<LetterId>,
    enabled: Vec<LetterId>,
    next: usize,
    tainted: bool,
}

type Key = (ProductState, ProofStateId, BitSet, OrderContext);

/// Runs one proof-check round (Algorithm 2).
#[allow(clippy::too_many_arguments)]
pub fn check_proof(
    pool: &mut TermPool,
    program: &Program,
    spec: Spec,
    order: &dyn PreferenceOrder,
    oracle: &mut CommutativityOracle,
    persistent: Option<&PersistentSets>,
    proof: &mut ProofAutomaton,
    useless: &mut UselessCache,
    config: &CheckConfig,
    stats: &mut CheckStats,
) -> CheckResult {
    let governor = pool.governor().clone();
    let membrane_mode = match spec {
        Spec::PrePost => MembraneMode::Terminal,
        Spec::ErrorOf(t) => MembraneMode::ErrorThread(t),
    };
    let n_letters = program.num_letters();
    let init_formula = pool.and([program.init_formula(), program.pre()]);
    let phi0 = proof.initial_state(pool, init_formula);

    let mut visited: HashMap<Key, VisitStatus> = HashMap::new();
    let mut stack: Vec<Frame> = Vec::new();

    // Returns Some(frame) if the state should be expanded, None if it is
    // covered/pruned; Err(trace) when it is an uncovered accepting state.
    macro_rules! enter {
        ($q:expr, $phi:expr, $sleep:expr, $ctx:expr, $via:expr, $trace_prefix:expr) => {{
            let q: ProductState = $q;
            let phi: ProofStateId = $phi;
            let sleep: BitSet = $sleep;
            let ctx: OrderContext = $ctx;
            stats.visited += 1;
            // Covered: the prefix is already proven infeasible.
            if proof.is_bottom(pool, phi) {
                visited.insert((q, phi, sleep, ctx), VisitStatus::DoneClean);
                None
            } else if program.is_accepting(&q, spec) {
                let violated = match spec {
                    Spec::ErrorOf(_) => true, // reachable error, not refuted
                    Spec::PrePost => !proof.implies_post(pool, phi, program.post()),
                };
                if violated {
                    let mut trace: Vec<LetterId> = $trace_prefix;
                    if let Some(l) = $via {
                        trace.push(l);
                    }
                    return CheckResult::Counterexample(trace);
                }
                visited.insert((q, phi, sleep, ctx), VisitStatus::DoneClean);
                None
            } else {
                let enabled = program.enabled(&q);
                let mut explore: Vec<LetterId> = match persistent {
                    Some(ps) => ps.compute(program, &q, order, ctx, membrane_mode),
                    None => enabled.clone(),
                };
                if config.use_sleep {
                    explore.retain(|l| !sleep.contains(l.index()));
                }
                // Deterministic DFS order: most preferred letter first.
                explore.sort_by_key(|&l| order.rank(ctx, l, program));
                visited.insert((q.clone(), phi, sleep.clone(), ctx), VisitStatus::OnStack);
                Some(Frame {
                    q,
                    phi,
                    sleep,
                    ctx,
                    via: $via,
                    explore,
                    enabled,
                    next: 0,
                    tainted: false,
                })
            }
        }};
    }

    let q0 = program.initial_state();
    let sleep0 = BitSet::new(n_letters);
    stats.useless_probes += 1;
    if useless.is_useless(&q0, &sleep0, 0, proof.assertion_set(phi0)) {
        stats.cache_skips += 1;
        return CheckResult::Proven;
    }
    match enter!(q0, phi0, sleep0, 0, None, Vec::new()) {
        Some(f) => stack.push(f),
        None => return CheckResult::Proven,
    }

    while let Some(frame) = stack.last_mut() {
        if stats.visited > config.max_visited {
            return CheckResult::LimitReached;
        }
        // One DFS state per iteration; the charge also observes the
        // deadline, cancellation flag and any injected fault, so a round
        // aborts mid-DFS rather than between rounds.
        if let Err(give_up) = governor.charge(Category::DfsStates) {
            return CheckResult::Interrupted(give_up);
        }
        if frame.next >= frame.explore.len() {
            // Subtree done: pop, record, propagate taint.
            let frame = stack.pop().expect("frame exists");
            let key: Key = (frame.q.clone(), frame.phi, frame.sleep.clone(), frame.ctx);
            let status = if frame.tainted {
                VisitStatus::DoneTainted
            } else {
                if !config.freeze_useless {
                    useless.mark(
                        frame.q.clone(),
                        frame.sleep.clone(),
                        frame.ctx,
                        proof.assertion_set(frame.phi).to_vec(),
                    );
                }
                VisitStatus::DoneClean
            };
            visited.insert(key, status);
            if frame.tainted {
                if let Some(parent) = stack.last_mut() {
                    parent.tainted = true;
                }
            }
            continue;
        }
        let a = frame.explore[frame.next];
        frame.next += 1;

        // Successor components.
        let q = frame.q.clone();
        let phi = frame.phi;
        let sleep = frame.sleep.clone();
        let ctx = frame.ctx;
        let enabled = frame.enabled.clone();

        let next_q = program.step(&q, a).expect("explored letter is enabled");
        let next_phi = proof.step(pool, program, phi, a);
        let next_ctx = order.step(ctx, a, program);
        let next_sleep = if config.use_sleep {
            let condition: TermId = if config.proof_sensitive {
                proof.conjunction(phi)
            } else {
                TermPool::TRUE
            };
            let mut s = BitSet::new(n_letters);
            for &b in &enabled {
                let earlier = sleep.contains(b.index()) || order.less(ctx, b, a, program);
                if earlier && oracle.commute_under(pool, program, condition, a, b) {
                    s.insert(b.index());
                }
            }
            s
        } else {
            BitSet::new(n_letters)
        };

        let key: Key = (next_q.clone(), next_phi, next_sleep.clone(), next_ctx);
        match visited.get(&key) {
            Some(VisitStatus::OnStack) => {
                stack.last_mut().expect("parent").tainted = true;
                continue;
            }
            Some(VisitStatus::DoneTainted) => {
                stack.last_mut().expect("parent").tainted = true;
                continue;
            }
            Some(VisitStatus::DoneClean) => continue,
            None => {}
        }
        // Cross-round cache.
        stats.useless_probes += 1;
        if useless.is_useless(
            &next_q,
            &next_sleep,
            next_ctx,
            proof.assertion_set(next_phi),
        ) {
            stats.cache_skips += 1;
            visited.insert(key, VisitStatus::DoneClean);
            continue;
        }
        let trace_prefix: Vec<LetterId> = stack.iter().filter_map(|f| f.via).collect();
        if let Some(f) = enter!(
            next_q,
            next_phi,
            next_sleep,
            next_ctx,
            Some(a),
            trace_prefix
        ) {
            stack.push(f)
        }
    }
    CheckResult::Proven
}

/// The annotation-level image of one fully covered reduction, captured by
/// [`record_reduction`]: everything an independent checker needs to replay
/// the DFS of Algorithm 2 *without* re-deriving any solver fact it does
/// not choose to re-verify.
///
/// Proof states are referenced by their `ProofStateId`; the caller
/// translates them to interned assertion sets when exporting a
/// certificate.
#[derive(Clone, Debug)]
pub struct RecordedReduction {
    /// Proof state covering the initial product state.
    pub initial: ProofStateId,
    /// Annotation transitions used: `(Φ, a, Φ')` with `Φ' = δ(Φ, a)`.
    pub edges: Vec<(ProofStateId, LetterId, ProofStateId)>,
    /// Proof states pruned as covered (`⋀Φ` unsatisfiable).
    pub bottoms: Vec<ProofStateId>,
    /// Proof states at accepting product states shown to entail the post.
    pub safes: Vec<ProofStateId>,
    /// Proof-sensitive commutativity facts used by sleep sets:
    /// `(a, b, Φ)` means `a ↷↷_φ b` with `φ = ⋀Φ`.
    pub claims: Vec<(LetterId, LetterId, ProofStateId)>,
    /// Unconditional commutativity facts (`a < b`, distinct threads) used
    /// by persistent-set membranes and by condition-free sleep sets.
    pub ucommute: Vec<(LetterId, LetterId)>,
}

/// State-budget headroom for the certificate recording re-walk, as a
/// multiple of [`CheckConfig::max_visited`]. The re-walk takes no
/// useless-cache skips, so it re-expands subtrees the check skipped; a
/// proven round whose check fit `max_visited` only thanks to those skips
/// still deserves a certificate. The governor's run-wide
/// `Category::DfsStates` budget — charged per recorded state too — is
/// the ultimate authority, so this cap only bounds a single re-walk.
pub const RECORD_VISITED_HEADROOM: usize = 4;

/// Re-walks the reduction after a round returned [`CheckResult::Proven`]
/// and records its annotation-level structure.
///
/// Unlike [`check_proof`] this walk takes **no** useless-cache skips, so
/// the recorded table covers subtrees earlier rounds had already
/// discharged — the certificate must stand on its own. Every solver query
/// hits the proof automaton's and oracle's memo tables, so the pass is
/// roughly one cold round of pure graph traversal.
///
/// Returns `None` when the walk cannot be completed faithfully: the state
/// budget or resource governor trips mid-walk, or (defensively) an
/// uncovered accepting state is found. The verdict is then reported
/// without a certificate rather than with a broken one.
#[allow(clippy::too_many_arguments)]
pub fn record_reduction(
    pool: &mut TermPool,
    program: &Program,
    spec: Spec,
    order: &dyn PreferenceOrder,
    oracle: &mut CommutativityOracle,
    persistent: Option<&PersistentSets>,
    proof: &mut ProofAutomaton,
    config: &CheckConfig,
) -> Option<RecordedReduction> {
    use std::collections::BTreeSet;

    let governor = pool.governor().clone();
    let membrane_mode = match spec {
        Spec::PrePost => MembraneMode::Terminal,
        Spec::ErrorOf(t) => MembraneMode::ErrorThread(t),
    };
    let n_letters = program.num_letters();
    let init_formula = pool.and([program.init_formula(), program.pre()]);
    let phi0 = proof.initial_state(pool, init_formula);

    let mut edges: BTreeSet<(u32, u32, u32)> = BTreeSet::new();
    let mut bottoms: BTreeSet<u32> = BTreeSet::new();
    let mut safes: BTreeSet<u32> = BTreeSet::new();
    let mut claims: BTreeSet<(u32, u32, u32)> = BTreeSet::new();
    let mut ucommute: BTreeSet<(u32, u32)> = BTreeSet::new();

    // Membranes consume the whole unconditional commutativity relation, so
    // the certificate must carry it whenever membranes (or condition-free
    // sleep sets) are in play. The oracle has every pair cached from
    // `PersistentSets::new`, so this is a table scan, not a solver sweep.
    if persistent.is_some() || (config.use_sleep && !config.proof_sensitive) {
        for a in program.letters() {
            for b in program.letters() {
                if a.index() < b.index()
                    && program.thread_of(a) != program.thread_of(b)
                    && oracle.commute(pool, program, a, b)
                {
                    ucommute.insert((a.index() as u32, b.index() as u32));
                }
            }
        }
    }

    struct RecFrame {
        q: ProductState,
        phi: ProofStateId,
        sleep: BitSet,
        ctx: OrderContext,
        explore: Vec<LetterId>,
        enabled: Vec<LetterId>,
        next: usize,
    }

    let mut visited: BTreeSet<Key> = BTreeSet::new();
    let mut stack: Vec<RecFrame> = Vec::new();
    let mut seen = 0usize;

    // Mirrors `enter!`: classify a state, record the fact that justified
    // its treatment, and return a frame when it must be expanded.
    macro_rules! rec_enter {
        ($q:expr, $phi:expr, $sleep:expr, $ctx:expr) => {{
            let q: ProductState = $q;
            let phi: ProofStateId = $phi;
            let sleep: BitSet = $sleep;
            let ctx: OrderContext = $ctx;
            seen += 1;
            // The recording walk takes no useless-cache skips, so it can
            // legitimately visit more states than the check did — a check
            // that fit `max_visited` only thanks to cache skips must not
            // lose its certificate here. The headroom factor covers that;
            // the `Category::DfsStates` governor charge below still owns
            // the run-wide budget. If the cap trips anyway the certificate
            // is dropped (surfaced as `certs_dropped`), never truncated.
            if seen > config.max_visited.saturating_mul(RECORD_VISITED_HEADROOM) {
                return None;
            }
            if proof.is_bottom(pool, phi) {
                bottoms.insert(phi.0);
                None
            } else if program.is_accepting(&q, spec) {
                match spec {
                    Spec::ErrorOf(_) => return None, // uncovered accepting state
                    Spec::PrePost => {
                        if !proof.implies_post(pool, phi, program.post()) {
                            return None;
                        }
                        safes.insert(phi.0);
                    }
                }
                None
            } else {
                let enabled = program.enabled(&q);
                let mut explore: Vec<LetterId> = match persistent {
                    Some(ps) => ps.compute(program, &q, order, ctx, membrane_mode),
                    None => enabled.clone(),
                };
                if config.use_sleep {
                    explore.retain(|l| !sleep.contains(l.index()));
                }
                explore.sort_by_key(|&l| order.rank(ctx, l, program));
                Some(RecFrame {
                    q,
                    phi,
                    sleep,
                    ctx,
                    explore,
                    enabled,
                    next: 0,
                })
            }
        }};
    }

    let q0 = program.initial_state();
    let sleep0 = BitSet::new(n_letters);
    visited.insert((q0.clone(), phi0, sleep0.clone(), 0));
    if let Some(f) = rec_enter!(q0, phi0, sleep0, 0) {
        stack.push(f);
    }

    while let Some(frame) = stack.last_mut() {
        if governor.charge(Category::DfsStates).is_err() {
            return None;
        }
        if frame.next >= frame.explore.len() {
            stack.pop();
            continue;
        }
        let a = frame.explore[frame.next];
        frame.next += 1;

        let q = frame.q.clone();
        let phi = frame.phi;
        let sleep = frame.sleep.clone();
        let ctx = frame.ctx;
        let enabled = frame.enabled.clone();

        let next_q = program.step(&q, a).expect("explored letter is enabled");
        let next_phi = proof.step(pool, program, phi, a);
        let next_ctx = order.step(ctx, a, program);
        edges.insert((phi.0, a.index() as u32, next_phi.0));
        let next_sleep = if config.use_sleep {
            let condition: TermId = if config.proof_sensitive {
                proof.conjunction(phi)
            } else {
                TermPool::TRUE
            };
            let mut s = BitSet::new(n_letters);
            for &b in &enabled {
                let earlier = sleep.contains(b.index()) || order.less(ctx, b, a, program);
                if earlier && oracle.commute_under(pool, program, condition, a, b) {
                    s.insert(b.index());
                    if config.proof_sensitive {
                        claims.insert((a.index() as u32, b.index() as u32, phi.0));
                    } else {
                        let (lo, hi) = if a.index() < b.index() {
                            (a, b)
                        } else {
                            (b, a)
                        };
                        ucommute.insert((lo.index() as u32, hi.index() as u32));
                    }
                }
            }
            s
        } else {
            BitSet::new(n_letters)
        };

        let key: Key = (next_q.clone(), next_phi, next_sleep.clone(), next_ctx);
        if !visited.insert(key) {
            continue;
        }
        if let Some(f) = rec_enter!(next_q, next_phi, next_sleep, next_ctx) {
            stack.push(f);
        }
    }

    let wrap = |x: &BTreeSet<u32>| x.iter().map(|&s| ProofStateId(s)).collect::<Vec<_>>();
    Some(RecordedReduction {
        initial: phi0,
        edges: edges
            .iter()
            .map(|&(s, l, t)| (ProofStateId(s), LetterId(l), ProofStateId(t)))
            .collect(),
        bottoms: wrap(&bottoms),
        safes: wrap(&safes),
        claims: claims
            .iter()
            .map(|&(a, b, s)| (LetterId(a), LetterId(b), ProofStateId(s)))
            .collect(),
        ucommute: ucommute
            .iter()
            .map(|&(a, b)| (LetterId(a), LetterId(b)))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_test() {
        assert!(is_subset(&[], &[]));
        assert!(is_subset(&[], &[1]));
        assert!(is_subset(&[1, 3], &[0, 1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[0, 1, 2, 3]));
        assert!(!is_subset(&[1], &[]));
        assert!(is_subset(&[2], &[2]));
    }

    #[test]
    fn useless_cache_subsumption() {
        let mut c = UselessCache::new();
        let q = ProductState(vec![automata::dfa::StateId(0)]);
        let s = BitSet::new(4);
        c.mark(q.clone(), s.clone(), 0, vec![1, 2]);
        assert!(c.is_useless(&q, &s, 0, &[1, 2, 3]), "superset is skipped");
        assert!(c.is_useless(&q, &s, 0, &[1, 2]));
        assert!(!c.is_useless(&q, &s, 0, &[1]), "subset is not skipped");
        assert!(!c.is_useless(&q, &s, 1, &[1, 2]), "different context");
        // Marking a superset is a no-op; marking a subset replaces.
        c.mark(q.clone(), s.clone(), 0, vec![1, 2, 3]);
        assert_eq!(c.len(), 1);
        c.mark(q.clone(), s.clone(), 0, vec![1]);
        assert_eq!(c.len(), 1);
        assert!(c.is_useless(&q, &s, 0, &[1]));
    }
}
