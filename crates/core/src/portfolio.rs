//! The preference-order portfolio of §8.
//!
//! The paper's headline GemCutter numbers aggregate, per benchmark, the
//! best result among five preference orders: `seq`, `lockstep`, and three
//! seeded random orders. The portfolio conceptually runs them in parallel
//! and terminates as soon as any order terminates; sequential execution
//! here records every order's outcome and reports the *winner* (earliest
//! conclusive verdict), with the parallel-model CPU time being the
//! winner's own time.

use crate::engine::{Engine, RoundOutcome};
use crate::proof::ProofAutomaton;
use crate::verify::{verify, Outcome, RunStats, Verdict, VerifierConfig};
use program::concurrent::{Program, Spec};
use smt::term::TermPool;
use std::time::Instant;

/// The five orders evaluated in §8.
pub fn default_portfolio() -> Vec<VerifierConfig> {
    vec![
        VerifierConfig::gemcutter_seq(),
        VerifierConfig::gemcutter_lockstep(),
        VerifierConfig::gemcutter_random(1),
        VerifierConfig::gemcutter_random(2),
        VerifierConfig::gemcutter_random(3),
    ]
}

/// Result of a portfolio run.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// The winning configuration's name, if any verdict was conclusive.
    pub winner: Option<String>,
    /// The winner's outcome (or the last inconclusive one).
    pub outcome: Outcome,
    /// Every member's `(name, outcome)`, in portfolio order.
    pub members: Vec<(String, Outcome)>,
}

/// Runs the portfolio on `program`, stopping at the first conclusive
/// verdict when `stop_at_first` is set (the parallel model); otherwise
/// every member runs (needed to identify per-benchmark best orders for
/// Figure 8).
pub fn portfolio_verify(
    pool: &mut TermPool,
    program: &Program,
    configs: &[VerifierConfig],
    stop_at_first: bool,
) -> PortfolioOutcome {
    assert!(!configs.is_empty(), "portfolio needs at least one member");
    let mut members: Vec<(String, Outcome)> = Vec::new();
    let mut winner: Option<usize> = None;
    for config in configs {
        let outcome = verify(pool, program, config);
        let conclusive = !matches!(outcome.verdict, Verdict::Unknown { .. });
        members.push((config.name.clone(), outcome));
        if conclusive {
            // Parallel model: the fastest conclusive member wins. When all
            // members run, pick the conclusive one with minimal time.
            winner = match winner {
                None => Some(members.len() - 1),
                Some(w) if members.last().expect("just pushed").1.stats.time
                    < members[w].1.stats.time =>
                {
                    Some(members.len() - 1)
                }
                other => other,
            };
            if stop_at_first {
                break;
            }
        }
    }
    let outcome = match winner {
        Some(w) => members[w].1.clone(),
        None => members.last().expect("nonempty").1.clone(),
    };
    PortfolioOutcome {
        winner: winner.map(|w| members[w].0.clone()),
        outcome,
        members,
    }
}

/// The **shared-proof adaptive portfolio** — the direction sketched in the
/// paper's §8 Limitations: instead of racing independent verifier copies,
/// the preference orders take turns (one refinement round each, cheapest
/// engine first) over a *single shared proof*. Assertions discovered while
/// chasing one order's counterexamples are program facts and immediately
/// cover traces of every other order's reduction; the first engine whose
/// reduction is fully covered concludes.
///
/// Returns the outcome plus the name of the engine that concluded.
pub fn adaptive_verify(
    pool: &mut TermPool,
    program: &Program,
    configs: &[VerifierConfig],
    max_total_rounds: usize,
) -> (Outcome, Option<String>) {
    assert!(!configs.is_empty(), "portfolio needs at least one member");
    let start = Instant::now();
    let mut stats = RunStats::default();
    let specs: Vec<Spec> = {
        let asserting = program.asserting_threads();
        if asserting.is_empty() {
            vec![Spec::PrePost]
        } else {
            asserting.into_iter().map(Spec::ErrorOf).collect()
        }
    };
    let mut winner: Option<String> = None;
    'specs: for spec in specs {
        let mut engines: Vec<Engine> = configs
            .iter()
            .map(|c| Engine::new(pool, program, spec, c))
            .collect();
        let mut shared = ProofAutomaton::new();
        let mut alive: Vec<usize> = (0..engines.len()).collect();
        let mut total_rounds = 0usize;
        loop {
            if alive.is_empty() {
                let outcome = Outcome {
                    verdict: Verdict::Unknown {
                        reason: "every portfolio engine gave up".to_owned(),
                    },
                    stats: finish(stats, &engines, &shared, start),
                };
                return (outcome, None);
            }
            if total_rounds >= max_total_rounds {
                let outcome = Outcome {
                    verdict: Verdict::Unknown {
                        reason: format!("no proof within {max_total_rounds} shared rounds"),
                    },
                    stats: finish(stats, &engines, &shared, start),
                };
                return (outcome, None);
            }
            // Adaptive scheduling: the engine whose proof checks have been
            // cheapest so far goes first.
            let &idx = alive
                .iter()
                .min_by_key(|&&i| engines[i].stats.visited)
                .expect("alive is nonempty");
            total_rounds += 1;
            match engines[idx].round(pool, program, &mut shared) {
                RoundOutcome::Proven => {
                    winner = Some(engines[idx].name.clone());
                    stats = finish(stats, &engines, &shared, start);
                    continue 'specs;
                }
                RoundOutcome::Bug(trace) => {
                    let name = engines[idx].name.clone();
                    let outcome = Outcome {
                        verdict: Verdict::Incorrect { trace },
                        stats: finish(stats, &engines, &shared, start),
                    };
                    return (outcome, Some(name));
                }
                RoundOutcome::Refined => {}
                RoundOutcome::GaveUp(_) => alive.retain(|&i| i != idx),
            }
        }
    }
    let outcome = Outcome {
        verdict: Verdict::Correct,
        stats: RunStats {
            time: start.elapsed(),
            ..stats
        },
    };
    (outcome, winner)
}

/// Folds engine counters and the shared proof into the running stats.
fn finish(
    mut stats: RunStats,
    engines: &[Engine],
    shared: &ProofAutomaton,
    start: Instant,
) -> RunStats {
    for e in engines {
        stats.rounds += e.stats.rounds;
        stats.visited_states += e.stats.visited;
        stats.max_round_visited = stats.max_round_visited.max(e.stats.max_round_visited);
        stats.cache_skips += e.stats.cache_skips;
    }
    stats.proof_size = stats.proof_size.max(shared.proof_size());
    stats.time = start.elapsed();
    stats
}
