//! Human-readable rendering of counterexample traces.
//!
//! A violating interleaving is a sequence of statements from different
//! threads; the renderings here show *which thread moves when* — the
//! classic one-column-per-thread layout used in concurrency papers
//! (including the τ₁/τ₂/τ₃ examples of §2).

use program::concurrent::{LetterId, Program};
use std::fmt::Write as _;

/// Renders `trace` as an indented list, one line per step, prefixed by the
/// executing thread's name.
pub fn render_linear(program: &Program, trace: &[LetterId]) -> String {
    let mut out = String::new();
    for (i, &l) in trace.iter().enumerate() {
        let thread = program.thread(program.thread_of(l));
        let _ = writeln!(
            out,
            "{:3}. [{}] {}",
            i + 1,
            thread.name(),
            program.statement(l).label()
        );
    }
    out
}

/// Renders `trace` as a table with one column per thread; each row has the
/// statement in the column of its executing thread.
pub fn render_columns(program: &Program, trace: &[LetterId]) -> String {
    let n = program.num_threads();
    // Column widths: max label length per thread (min 8).
    let mut widths: Vec<usize> = (0..n)
        .map(|i| program.threads()[i].name().len().max(8))
        .collect();
    for &l in trace {
        let t = program.thread_of(l).index();
        widths[t] = widths[t].max(program.statement(l).label().len());
    }
    let mut out = String::new();
    // Header.
    for (i, t) in program.threads().iter().enumerate() {
        let _ = write!(out, "| {:w$} ", t.name(), w = widths[i]);
    }
    out.push_str("|\n");
    for (i, _) in program.threads().iter().enumerate() {
        let _ = write!(out, "|{:-<w$}", "", w = widths[i] + 2);
    }
    out.push_str("|\n");
    for &l in trace {
        let t = program.thread_of(l).index();
        for (i, &w) in widths.iter().enumerate() {
            if i == t {
                let _ = write!(out, "| {:w$} ", program.statement(l).label(), w = w);
            } else {
                let _ = write!(out, "| {:w$} ", "", w = w);
            }
        }
        out.push_str("|\n");
    }
    out
}

/// Summarizes a trace as the number of context switches it contains — the
/// metric sequentialization-for-bug-finding tools bound (§9's related
/// work); minimal-representative traces tend to have few.
pub fn context_switches(program: &Program, trace: &[LetterId]) -> usize {
    trace
        .windows(2)
        .filter(|w| program.thread_of(w[0]) != program.thread_of(w[1]))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::bitset::BitSet;
    use automata::dfa::DfaBuilder;
    use program::stmt::{SimpleStmt, Statement};
    use program::thread::{Thread, ThreadId};
    use smt::linear::LinExpr;
    use smt::term::TermPool;

    fn two_thread_program(pool: &mut TermPool) -> Program {
        let mut b = Program::builder("t");
        let x = pool.var("x");
        b.add_global(x, 0);
        let l0 = b.add_statement(Statement::simple(
            ThreadId(0),
            "x := 1",
            SimpleStmt::Assign(x, LinExpr::constant(1)),
            pool,
        ));
        let l1 = b.add_statement(Statement::simple(
            ThreadId(1),
            "x := 2",
            SimpleStmt::Assign(x, LinExpr::constant(2)),
            pool,
        ));
        for l in [l0, l1] {
            let mut cfg = DfaBuilder::new();
            let entry = cfg.add_state(false);
            let exit = cfg.add_state(true);
            cfg.add_transition(entry, l, exit);
            b.add_thread(Thread::new("worker", cfg.build(entry), BitSet::new(2)));
        }
        b.build(pool)
    }

    #[test]
    fn linear_rendering() {
        let mut pool = TermPool::new();
        let p = two_thread_program(&mut pool);
        let s = render_linear(&p, &[LetterId(0), LetterId(1)]);
        assert!(s.contains("1. [worker] x := 1"));
        assert!(s.contains("2. [worker] x := 2"));
    }

    #[test]
    fn column_rendering_places_statements_in_their_thread() {
        let mut pool = TermPool::new();
        let p = two_thread_program(&mut pool);
        let s = render_columns(&p, &[LetterId(1), LetterId(0)]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4, "header + rule + 2 rows");
        // First step is thread 1: its label is in the second column.
        let row = lines[2];
        let second_col = row.split('|').nth(2).unwrap();
        assert!(second_col.contains("x := 2"), "{row}");
        let first_col = row.split('|').nth(1).unwrap();
        assert!(first_col.trim().is_empty());
    }

    #[test]
    fn context_switch_count() {
        let mut pool = TermPool::new();
        let p = two_thread_program(&mut pool);
        assert_eq!(context_switches(&p, &[]), 0);
        assert_eq!(context_switches(&p, &[LetterId(0)]), 0);
        assert_eq!(context_switches(&p, &[LetterId(0), LetterId(1)]), 1);
        assert_eq!(
            context_switches(&p, &[LetterId(0), LetterId(1), LetterId(0)]),
            2
        );
    }
}
