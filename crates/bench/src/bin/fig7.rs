//! **Figure 7**: scatter plots comparing Automizer (x-axis) with
//! GemCutter (y-axis) on refinement rounds and proof size, over the
//! benchmarks both tools solve; `+` marks correct, `×` incorrect programs.
//!
//! Run: `cargo run --release -p bench --bin fig7`

use bench::{run_config, run_portfolio, Run};
use bench_suite::Expected;
use gemcutter::verify::VerifierConfig;
use std::collections::HashMap;

fn main() {
    let corpus = bench::corpus();
    println!("Figure 7: per-benchmark scatter (automizer x, gemcutter y)\n");
    let automizer = run_config(&corpus, &VerifierConfig::automizer());
    let gemcutter: Vec<Run> = run_portfolio(&corpus, false)
        .into_iter()
        .map(|(r, _)| r)
        .collect();
    let auto: HashMap<&str, &Run> = automizer.iter().map(|r| (r.name.as_str(), r)).collect();

    println!(
        "{:24} {:>5} {:>14} {:>14} {:>14} {:>14}",
        "benchmark", "mark", "rounds(auto)", "rounds(gem)", "proof(auto)", "proof(gem)"
    );
    let mut round_wins = 0usize;
    let mut round_ties = 0usize;
    let mut total = 0usize;
    let mut proof_wins = 0usize;
    let mut proof_ties = 0usize;
    for g in &gemcutter {
        let Some(a) = auto.get(g.name.as_str()) else {
            continue;
        };
        if !(a.successful() && g.successful()) {
            continue;
        }
        total += 1;
        let mark = if g.expected == Expected::Safe {
            "+"
        } else {
            "x"
        };
        let (ra, rg) = (a.outcome.stats.rounds, g.outcome.stats.rounds);
        let (pa, pg) = (a.outcome.stats.proof_size, g.outcome.stats.proof_size);
        println!(
            "{:24} {mark:>5} {ra:>14} {rg:>14} {pa:>14} {pg:>14}",
            g.name
        );
        if rg < ra {
            round_wins += 1;
        } else if rg == ra {
            round_ties += 1;
        }
        if pg < pa {
            proof_wins += 1;
        } else if pg == pa {
            proof_ties += 1;
        }
    }
    println!();
    println!(
        "GemCutter needs fewer rounds on {round_wins}/{total} (ties {round_ties}); smaller proofs on {proof_wins}/{total} (ties {proof_ties})."
    );
    println!(
        "Paper shape: most points lie on or below the diagonal (factors up to 25×/65× there)."
    );
}
