//! The preference-order portfolio of §8 — sequential, adaptive, and
//! multi-threaded shared-proof variants.
//!
//! The paper's headline GemCutter numbers aggregate, per benchmark, the
//! best result among five preference orders: `seq`, `lockstep`, and three
//! seeded random orders. The portfolio conceptually runs them in parallel
//! and terminates as soon as any order terminates; sequential execution
//! here ([`portfolio_verify`]) records every order's outcome and reports
//! the *winner* (earliest conclusive verdict), with the parallel-model CPU
//! time being the winner's own time.
//!
//! [`adaptive_verify`] interleaves the orders single-threaded over one
//! shared proof. [`parallel_verify`] is the true multi-threaded variant:
//! each engine runs refinement rounds on its own OS thread with its own
//! [`TermPool`], and a coordinator relays newly discovered assertions
//! between them as pool-independent [`ExportedTerm`]s (see
//! [`smt::transfer`]), so every engine still benefits from every other
//! engine's refinements.

use crate::certify::SpecCert;
use crate::engine::{Engine, EngineStats, RoundOutcome};
use crate::govern::{Category, GiveUp};
use crate::proof::ProofAutomaton;
use crate::verify::{
    assemble_certificate, specs_of, verify, Outcome, RunStats, Verdict, VerifierConfig,
};
use program::concurrent::{LetterId, Program, Spec};
use smt::term::TermPool;
use smt::transfer::ExportedTerm;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The five orders evaluated in §8.
pub fn default_portfolio() -> Vec<VerifierConfig> {
    vec![
        VerifierConfig::gemcutter_seq(),
        VerifierConfig::gemcutter_lockstep(),
        VerifierConfig::gemcutter_random(1),
        VerifierConfig::gemcutter_random(2),
        VerifierConfig::gemcutter_random(3),
    ]
}

/// Result of a portfolio run.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// The winning configuration's name, if any verdict was conclusive.
    pub winner: Option<String>,
    /// The winner's outcome (or the last inconclusive one).
    pub outcome: Outcome,
    /// Every member's `(name, outcome)`, in portfolio order.
    pub members: Vec<(String, Outcome)>,
}

/// Runs the portfolio on `program`, stopping at the first conclusive
/// verdict when `stop_at_first` is set (the parallel model); otherwise
/// every member runs (needed to identify per-benchmark best orders for
/// Figure 8).
pub fn portfolio_verify(
    pool: &mut TermPool,
    program: &Program,
    configs: &[VerifierConfig],
    stop_at_first: bool,
) -> PortfolioOutcome {
    assert!(!configs.is_empty(), "portfolio needs at least one member");
    let mut members: Vec<(String, Outcome)> = Vec::new();
    let mut winner: Option<usize> = None;
    for config in configs {
        let outcome = verify(pool, program, config);
        let conclusive = !matches!(outcome.verdict, Verdict::GaveUp(_));
        members.push((config.name.clone(), outcome));
        if conclusive {
            // Parallel model: the fastest conclusive member wins. When all
            // members run, pick the conclusive one with minimal time.
            winner = match winner {
                None => Some(members.len() - 1),
                Some(w)
                    if members.last().expect("just pushed").1.stats.time
                        < members[w].1.stats.time =>
                {
                    Some(members.len() - 1)
                }
                other => other,
            };
            if stop_at_first {
                break;
            }
        }
    }
    let outcome = match winner {
        Some(w) => members[w].1.clone(),
        None => members.last().expect("nonempty").1.clone(),
    };
    PortfolioOutcome {
        winner: winner.map(|w| members[w].0.clone()),
        outcome,
        members,
    }
}

/// The **shared-proof adaptive portfolio** — the direction sketched in the
/// paper's §8 Limitations: instead of racing independent verifier copies,
/// the preference orders take turns (one refinement round each, cheapest
/// engine first) over a *single shared proof*. Assertions discovered while
/// chasing one order's counterexamples are program facts and immediately
/// cover traces of every other order's reduction; the first engine whose
/// reduction is fully covered concludes.
///
/// Returns the outcome plus the name of the engine that concluded.
pub fn adaptive_verify(
    pool: &mut TermPool,
    program: &Program,
    configs: &[VerifierConfig],
    max_total_rounds: usize,
) -> (Outcome, Option<String>) {
    assert!(!configs.is_empty(), "portfolio needs at least one member");
    let start = Instant::now();
    let mut stats = RunStats::default();
    let specs = specs_of(program);
    let mut winner: Option<String> = None;
    let mut spec_certs: Vec<Option<SpecCert>> = Vec::new();
    'specs: for spec in specs {
        let mut engines: Vec<Engine> = configs
            .iter()
            .map(|c| Engine::new(pool, program, spec, c))
            .collect();
        let mut shared = ProofAutomaton::new();
        let mut alive: Vec<usize> = (0..engines.len()).collect();
        let mut total_rounds = 0usize;
        let mut first_give_up: Option<GiveUp> = None;
        loop {
            if alive.is_empty() {
                let verdict = Verdict::GaveUp(match &first_give_up {
                    Some(g) => GiveUp::new(
                        g.category,
                        format!("every portfolio engine gave up (e.g. {})", g.reason),
                    ),
                    None => GiveUp::new(Category::Cancelled, "every portfolio engine gave up"),
                });
                let outcome = Outcome {
                    verdict,
                    stats: finish(stats, &engines, &shared, start),
                    certificate: None,
                };
                return (outcome, None);
            }
            if total_rounds >= max_total_rounds {
                let outcome = Outcome {
                    verdict: Verdict::gave_up(
                        Category::Rounds,
                        format!("no proof within {max_total_rounds} shared rounds"),
                    ),
                    stats: finish(stats, &engines, &shared, start),
                    certificate: None,
                };
                return (outcome, None);
            }
            // Adaptive scheduling: the engine whose proof checks have been
            // cheapest so far goes first.
            let &idx = alive
                .iter()
                .min_by_key(|&&i| engines[i].stats.visited)
                .expect("alive is nonempty");
            total_rounds += 1;
            match engines[idx].round(pool, program, &mut shared) {
                RoundOutcome::Proven => {
                    winner = Some(engines[idx].name.clone());
                    spec_certs.push(engines[idx].record_spec_cert(pool, program, &mut shared));
                    stats = finish(stats, &engines, &shared, start);
                    continue 'specs;
                }
                RoundOutcome::Bug(trace) => {
                    let name = engines[idx].name.clone();
                    let verdict = Verdict::Incorrect { trace };
                    let certificate = if configs[idx].certify {
                        assemble_certificate(pool, program, &verdict, Vec::new(), Some(spec))
                    } else {
                        None
                    };
                    let outcome = Outcome {
                        verdict,
                        stats: finish(stats, &engines, &shared, start),
                        certificate,
                    };
                    return (outcome, Some(name));
                }
                RoundOutcome::Refined => {}
                RoundOutcome::GaveUp(g) => {
                    first_give_up.get_or_insert(g);
                    alive.retain(|&i| i != idx);
                }
                RoundOutcome::Cancelled => alive.retain(|&i| i != idx),
            }
        }
    }
    let certificate = assemble_certificate(pool, program, &Verdict::Correct, spec_certs, None);
    let outcome = Outcome {
        verdict: Verdict::Correct,
        stats: RunStats {
            time: start.elapsed(),
            ..stats
        },
        certificate,
    };
    (outcome, winner)
}

/// Folds engine counters and the shared proof into the running stats.
fn finish(
    mut stats: RunStats,
    engines: &[Engine],
    shared: &ProofAutomaton,
    start: Instant,
) -> RunStats {
    for e in engines {
        stats.rounds += e.stats.rounds;
        stats.visited_states += e.stats.visited;
        stats.max_round_visited = stats.max_round_visited.max(e.stats.max_round_visited);
        stats.cache_skips += e.stats.cache_skips;
        stats.useless_probes += e.stats.useless_probes;
        stats.useless_len += e.stats.useless_len;
        stats.dfs_steals += e.stats.dfs_steals;
        stats.dfs_tasks += e.stats.dfs_tasks;
        stats.dfs_max_worker_tasks = stats.dfs_max_worker_tasks.max(e.stats.dfs_max_worker_tasks);
        stats.certs_dropped += e.stats.certs_dropped;
        // Single-threaded rounds: per-engine deltas are disjoint, so the
        // sum is exact.
        stats.qcache_hits += e.stats.qcache_hits;
        stats.qcache_misses += e.stats.qcache_misses;
    }
    stats.proof_size = stats.proof_size.max(shared.proof_size());
    stats.time = start.elapsed();
    stats
}

// ---------------------------------------------------------------------------
// Multi-threaded shared-proof portfolio
// ---------------------------------------------------------------------------

/// Configuration of [`parallel_verify`].
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Exchange assertions at round barriers, applied in engine-index
    /// order, so that repeated runs are bit-for-bit reproducible (verdict,
    /// per-engine round counts and proof sizes). The default free-running
    /// mode exchanges assertions as soon as they are discovered and lets
    /// the fastest engine win the race.
    pub deterministic: bool,
    /// Per-engine refinement-round budget (per spec).
    pub max_rounds_per_engine: usize,
    /// Per-engine wall-clock budget, enforced *inside* queries through
    /// each worker's resource-governor deadline (and re-checked between
    /// rounds as a backstop); an engine over budget gives up without
    /// poisoning the run. In deterministic mode a budget makes round
    /// counts machine-dependent, so leave it `None` there when
    /// reproducibility matters.
    pub wall_clock_budget: Option<Duration>,
    /// Recycled proof assertions seeded into every worker's proof
    /// automaton before its first round — how the restart supervisor
    /// replays a failed attempt's partial proof. Seeds are candidate
    /// assertions only (every use is re-validated by a Hoare query), so
    /// stale seeds cost completeness, never soundness.
    pub seed: Vec<ExportedTerm>,
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig {
            deterministic: false,
            max_rounds_per_engine: 60,
            wall_clock_budget: None,
            seed: Vec::new(),
        }
    }
}

/// How one engine of a [`parallel_verify`] run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineStatus {
    /// This engine produced the winning verdict.
    Won,
    /// Another engine concluded first; this one was stopped.
    Lost,
    /// The engine gave up (budget, solver incompleteness, non-progress).
    GaveUp(GiveUp),
    /// The engine thread panicked; the run continued without it.
    Panicked(String),
}

/// Per-engine summary of a [`parallel_verify`] run, one per `(spec,
/// engine)` pair in spec-major order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineReport {
    /// The engine's configuration name.
    pub name: String,
    /// Index of the analyzed spec (one per asserting thread).
    pub spec: usize,
    /// Refinement rounds this engine executed.
    pub rounds: usize,
    /// Final size of this engine's proof automaton.
    pub proof_size: usize,
    /// How the engine ended.
    pub status: EngineStatus,
}

/// Result of [`parallel_verify`].
#[derive(Clone, Debug)]
pub struct ParallelOutcome {
    /// Verdict plus counters aggregated over all engines and specs.
    pub outcome: Outcome,
    /// Name of the engine that produced the verdict, if conclusive.
    pub winner: Option<String>,
    /// Per-engine reports in spec-major, engine-index order.
    pub engines: Vec<EngineReport>,
    /// Union of every worker's proof assertions at exit (deduped, in
    /// spec-major, engine-index order) — what the restart supervisor
    /// recycles into the next attempt's [`ParallelConfig::seed`].
    pub harvest: Vec<ExportedTerm>,
}

/// Worker → coordinator messages.
enum WorkerMsg {
    /// Free-running: a refinement produced new assertions to share.
    Refined {
        engine: usize,
        batch: Vec<ExportedTerm>,
    },
    /// Deterministic: the engine finished its round and waits at the
    /// barrier (`batch` is empty when the round added nothing).
    RoundDone {
        engine: usize,
        batch: Vec<ExportedTerm>,
    },
    /// The engine is done (conclusive, gave up, stopped, or panicked).
    Exit(Box<WorkerExit>),
}

/// Coordinator → worker messages.
enum CoordMsg {
    /// Assertions discovered by other engines; in deterministic mode also
    /// the barrier release starting the next round.
    Assertions(Vec<Vec<ExportedTerm>>),
    /// Stop and report (deterministic mode; free-running uses the flag).
    Stop,
}

/// Terminal state of one worker.
struct WorkerExit {
    engine: usize,
    verdict: WorkerVerdict,
    stats: EngineStats,
    proof_size: usize,
    hoare_checks: usize,
    /// The worker's full proof at exit, exported pool-independently — the
    /// harvest the restart supervisor recycles into the next attempt.
    assertions: Vec<ExportedTerm>,
    /// The recorded per-spec certificate when the worker proved the spec
    /// (and certificate emission is enabled on its configuration).
    certificate: Option<SpecCert>,
}

enum WorkerVerdict {
    Proven,
    Bug(Vec<LetterId>),
    GaveUp(GiveUp),
    Cancelled,
    Panicked(String),
}

/// The **multi-threaded shared-proof portfolio**: one OS thread per
/// configuration, each with a private [`TermPool`] clone and proof
/// automaton, exchanging newly discovered assertions through the
/// coordinator as pool-independent [`ExportedTerm`]s.
///
/// The first engine to reach a conclusive verdict wins; the others are
/// cancelled through a shared stop flag checked inside the proof-check
/// DFS. A panicking or over-budget engine is dropped gracefully — its
/// report records the failure and the remaining engines keep running.
///
/// With [`ParallelConfig::deterministic`] the engines run in lockstep:
/// the coordinator collects each round's assertion batches, orders them by
/// engine index, and broadcasts them at the next round barrier, making
/// verdict, per-engine round counts and proof sizes reproducible across
/// runs regardless of thread scheduling.
pub fn parallel_verify(
    pool: &TermPool,
    program: &Program,
    configs: &[VerifierConfig],
    pcfg: &ParallelConfig,
) -> ParallelOutcome {
    assert!(!configs.is_empty(), "portfolio needs at least one member");
    let start = Instant::now();
    let specs = specs_of(program);
    // Workers clone this pool, sharing its Arc-backed query cache; the
    // pool-level snapshot delta is therefore the exact run total (summing
    // the workers' own per-round deltas would double-count concurrent
    // activity).
    let cache_before = pool.query_cache().map(|c| c.stats());
    let mut stats = RunStats::default();
    let mut reports: Vec<EngineReport> = Vec::new();
    let mut winner: Option<String> = None;
    let mut harvest: Vec<ExportedTerm> = Vec::new();
    let mut harvested: HashSet<ExportedTerm> = HashSet::new();
    let mut spec_certs: Vec<Option<SpecCert>> = Vec::new();
    for (spec_idx, &spec) in specs.iter().enumerate() {
        let phase = run_spec_parallel(pool, program, spec, configs, pcfg);
        for exit in &phase.exits {
            for t in &exit.assertions {
                if harvested.insert(t.clone()) {
                    harvest.push(t.clone());
                }
            }
        }
        for exit in &phase.exits {
            stats.rounds += exit.stats.rounds;
            stats.visited_states += exit.stats.visited;
            stats.max_round_visited = stats.max_round_visited.max(exit.stats.max_round_visited);
            stats.cache_skips += exit.stats.cache_skips;
            stats.useless_probes += exit.stats.useless_probes;
            stats.useless_len += exit.stats.useless_len;
            stats.dfs_steals += exit.stats.dfs_steals;
            stats.dfs_tasks += exit.stats.dfs_tasks;
            stats.dfs_max_worker_tasks = stats
                .dfs_max_worker_tasks
                .max(exit.stats.dfs_max_worker_tasks);
            stats.certs_dropped += exit.stats.certs_dropped;
            stats.hoare_checks += exit.hoare_checks;
            stats.proof_size = stats.proof_size.max(exit.proof_size);
            stats.interpolation.feasibility_checks += exit.stats.interpolation.feasibility_checks;
            stats.interpolation.sliced_statements += exit.stats.interpolation.sliced_statements;
            stats.interpolation.farkas_chains += exit.stats.interpolation.farkas_chains;
        }
        let winner_idx = phase.winner;
        for exit in &phase.exits {
            let status = match &exit.verdict {
                WorkerVerdict::Proven | WorkerVerdict::Bug(_)
                    if winner_idx == Some(exit.engine) =>
                {
                    EngineStatus::Won
                }
                // A conclusive verdict that lost the race (free-running
                // mode can have several finishers) still "lost".
                WorkerVerdict::Proven | WorkerVerdict::Bug(_) => EngineStatus::Lost,
                WorkerVerdict::GaveUp(g) => EngineStatus::GaveUp(g.clone()),
                WorkerVerdict::Cancelled => EngineStatus::Lost,
                WorkerVerdict::Panicked(m) => EngineStatus::Panicked(m.clone()),
            };
            reports.push(EngineReport {
                name: configs[exit.engine].name.clone(),
                spec: spec_idx,
                rounds: exit.stats.rounds,
                proof_size: exit.proof_size,
                status,
            });
        }
        match phase.verdict {
            Verdict::Correct => {
                winner = winner_idx.map(|i| configs[i].name.clone());
                spec_certs.push(
                    winner_idx
                        .and_then(|w| phase.exits.iter().find(|e| e.engine == w))
                        .and_then(|e| e.certificate.clone()),
                );
            }
            other => {
                stats.time = start.elapsed();
                apply_cache_delta(&mut stats, pool, cache_before);
                let certificate = if winner_idx.is_some_and(|i| configs[i].certify) {
                    assemble_certificate(pool, program, &other, Vec::new(), Some(spec))
                } else {
                    None
                };
                return ParallelOutcome {
                    outcome: Outcome {
                        verdict: other,
                        stats,
                        certificate,
                    },
                    winner: winner_idx.map(|i| configs[i].name.clone()),
                    engines: reports,
                    harvest,
                };
            }
        }
    }
    stats.time = start.elapsed();
    apply_cache_delta(&mut stats, pool, cache_before);
    let certificate = assemble_certificate(pool, program, &Verdict::Correct, spec_certs, None);
    ParallelOutcome {
        outcome: Outcome {
            verdict: Verdict::Correct,
            stats,
            certificate,
        },
        winner,
        engines: reports,
        harvest,
    }
}

/// Attributes the shared query cache's activity since `before` to `stats`.
fn apply_cache_delta(stats: &mut RunStats, pool: &TermPool, before: Option<smt::CacheStats>) {
    if let (Some(cache), Some(before)) = (pool.query_cache(), before) {
        let delta = cache.stats().since(&before);
        stats.qcache_hits = delta.hits;
        stats.qcache_misses = delta.misses;
    }
}

/// Result of one spec phase of [`parallel_verify`].
struct PhaseResult {
    verdict: Verdict,
    winner: Option<usize>,
    /// One exit per engine, sorted by engine index.
    exits: Vec<WorkerExit>,
}

fn run_spec_parallel(
    pool: &TermPool,
    program: &Program,
    spec: Spec,
    configs: &[VerifierConfig],
    pcfg: &ParallelConfig,
) -> PhaseResult {
    let n = configs.len();
    let stop = Arc::new(AtomicBool::new(false));
    let (to_coord, from_workers) = channel::<WorkerMsg>();
    let mut to_workers: Vec<Sender<CoordMsg>> = Vec::with_capacity(n);
    let mut worker_rx: Vec<Option<Receiver<CoordMsg>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel::<CoordMsg>();
        to_workers.push(tx);
        worker_rx.push(Some(rx));
    }

    std::thread::scope(|scope| {
        for (idx, config) in configs.iter().enumerate() {
            let rx = worker_rx[idx].take().expect("receiver unclaimed");
            let tx = to_coord.clone();
            let stop = Arc::clone(&stop);
            let mut worker_pool = pool.clone();
            scope.spawn(move || {
                let exit = catch_unwind(AssertUnwindSafe(|| {
                    worker_loop(
                        &mut worker_pool,
                        program,
                        spec,
                        config,
                        pcfg,
                        idx,
                        &rx,
                        &tx,
                        &stop,
                    )
                }))
                .unwrap_or_else(|payload| {
                    Box::new(WorkerExit {
                        engine: idx,
                        verdict: WorkerVerdict::Panicked(panic_message(payload)),
                        stats: EngineStats::default(),
                        proof_size: 0,
                        hoare_checks: 0,
                        assertions: Vec::new(),
                        certificate: None,
                    })
                });
                // The coordinator may already be gone when the run was
                // decided; a failed send is fine then.
                let _ = tx.send(WorkerMsg::Exit(exit));
            });
        }
        drop(to_coord);

        if pcfg.deterministic {
            coordinate_lockstep(n, pcfg, &from_workers, &to_workers)
        } else {
            coordinate_free_running(n, pcfg, &from_workers, &to_workers, &stop)
        }
    })
}

/// One engine's thread body: round loop with assertion import/export.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    pool: &mut TermPool,
    program: &Program,
    spec: Spec,
    config: &VerifierConfig,
    pcfg: &ParallelConfig,
    idx: usize,
    rx: &Receiver<CoordMsg>,
    tx: &Sender<WorkerMsg>,
    stop: &Arc<AtomicBool>,
) -> Box<WorkerExit> {
    let start = Instant::now();
    // Each worker gets its own governor: the run's budgets and fault plan,
    // the portfolio wall-clock budget as an in-query deadline, and (in
    // free-running mode) the shared stop flag as the cancellation token so
    // a losing engine aborts mid-query instead of finishing its round.
    let mut gcfg = config.govern.clone();
    if gcfg.deadline.is_none() {
        gcfg.deadline = pcfg.wall_clock_budget;
    }
    let governor = if pcfg.deterministic {
        gcfg.build()
    } else {
        gcfg.build_with_cancel(Arc::clone(stop))
    };
    pool.set_governor(governor);
    if !config.use_qcache {
        // Drop only this worker's handle; other workers sharing the cache
        // keep theirs.
        pool.take_query_cache();
    }
    let mut engine = Engine::new(pool, program, spec, config);
    let mut proof = ProofAutomaton::new();
    // Replay the supervisor's recycled assertions (if any) before the
    // first round; they are candidates like any broadcast batch.
    import_batch(pool, &mut proof, &pcfg.seed);
    let exit = |pool: &TermPool,
                engine: &Engine,
                proof: &ProofAutomaton,
                verdict: WorkerVerdict,
                certificate: Option<SpecCert>| {
        Box::new(WorkerExit {
            engine: idx,
            verdict,
            stats: engine.stats,
            proof_size: proof.proof_size(),
            hoare_checks: proof.stats().hoare_checks,
            assertions: proof.assertions().iter().map(|&t| pool.export(t)).collect(),
            certificate,
        })
    };
    loop {
        // Absorb assertions from the other engines. Free-running: drain
        // whatever has arrived. Deterministic: block at the barrier.
        if pcfg.deterministic {
            match rx.recv() {
                Ok(CoordMsg::Assertions(batches)) => {
                    for batch in &batches {
                        import_batch(pool, &mut proof, batch);
                    }
                }
                Ok(CoordMsg::Stop) | Err(_) => {
                    return exit(pool, &engine, &proof, WorkerVerdict::Cancelled, None);
                }
            }
        } else {
            while let Ok(msg) = rx.try_recv() {
                match msg {
                    CoordMsg::Assertions(batches) => {
                        for batch in &batches {
                            import_batch(pool, &mut proof, batch);
                        }
                    }
                    CoordMsg::Stop => {
                        return exit(pool, &engine, &proof, WorkerVerdict::Cancelled, None);
                    }
                }
            }
            if stop.load(Ordering::Relaxed) {
                return exit(pool, &engine, &proof, WorkerVerdict::Cancelled, None);
            }
        }
        // Per-engine budgets (graceful: the engine just gives up).
        if engine.stats.rounds >= pcfg.max_rounds_per_engine {
            return exit(
                pool,
                &engine,
                &proof,
                WorkerVerdict::GaveUp(GiveUp::new(
                    Category::Rounds,
                    format!("no proof within {} rounds", pcfg.max_rounds_per_engine),
                )),
                None,
            );
        }
        if let Some(budget) = pcfg.wall_clock_budget {
            if start.elapsed() >= budget {
                return exit(
                    pool,
                    &engine,
                    &proof,
                    WorkerVerdict::GaveUp(GiveUp::new(
                        Category::Deadline,
                        "wall-clock budget exhausted",
                    )),
                    None,
                );
            }
        }
        match engine.round(pool, program, &mut proof) {
            RoundOutcome::Refined => {
                let batch: Vec<ExportedTerm> = engine
                    .take_new_assertions()
                    .into_iter()
                    .map(|t| pool.export(t))
                    .collect();
                let msg = if pcfg.deterministic {
                    WorkerMsg::RoundDone { engine: idx, batch }
                } else {
                    WorkerMsg::Refined { engine: idx, batch }
                };
                if tx.send(msg).is_err() {
                    return exit(pool, &engine, &proof, WorkerVerdict::Cancelled, None);
                }
            }
            RoundOutcome::Proven => {
                let cert = engine.record_spec_cert(pool, program, &mut proof);
                return exit(pool, &engine, &proof, WorkerVerdict::Proven, cert);
            }
            RoundOutcome::Bug(trace) => {
                return exit(pool, &engine, &proof, WorkerVerdict::Bug(trace), None)
            }
            RoundOutcome::GaveUp(give_up) => {
                return exit(pool, &engine, &proof, WorkerVerdict::GaveUp(give_up), None)
            }
            RoundOutcome::Cancelled => {
                return exit(pool, &engine, &proof, WorkerVerdict::Cancelled, None)
            }
        }
    }
}

fn import_batch(pool: &mut TermPool, proof: &mut ProofAutomaton, batch: &[ExportedTerm]) {
    for t in batch {
        let id = pool.import(t);
        proof.add_assertion(id);
    }
}

/// Deterministic coordinator: full round barriers, assertion batches
/// merged and broadcast in engine-index order, lowest conclusive engine
/// index wins.
fn coordinate_lockstep(
    n: usize,
    pcfg: &ParallelConfig,
    from_workers: &Receiver<WorkerMsg>,
    to_workers: &[Sender<CoordMsg>],
) -> PhaseResult {
    let mut alive: Vec<bool> = vec![true; n];
    let mut exits: Vec<Option<WorkerExit>> = (0..n).map(|_| None).collect();
    // Batches discovered in the previous round, indexed by engine.
    let mut pending: Vec<Vec<ExportedTerm>> = vec![Vec::new(); n];
    loop {
        let living: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
        if living.is_empty() {
            break;
        }
        // Release the barrier: everyone gets the same ordered batch list.
        let broadcast: Vec<Vec<ExportedTerm>> =
            pending.iter().filter(|b| !b.is_empty()).cloned().collect();
        pending.iter_mut().for_each(Vec::clear);
        for &i in &living {
            // A failed send means the worker already exited; its Exit
            // message is collected below.
            let _ = to_workers[i].send(CoordMsg::Assertions(broadcast.clone()));
        }
        // Collect one reply per living worker.
        let mut replies = 0;
        let mut concluded: Vec<usize> = Vec::new();
        while replies < living.len() {
            match from_workers.recv() {
                Ok(WorkerMsg::RoundDone { engine, batch }) => {
                    replies += 1;
                    pending[engine] = batch;
                }
                Ok(WorkerMsg::Refined { engine, batch }) => {
                    // Not expected in lockstep mode, but harmless.
                    replies += 1;
                    pending[engine] = batch;
                }
                Ok(WorkerMsg::Exit(exit)) => {
                    replies += 1;
                    let i = exit.engine;
                    alive[i] = false;
                    if matches!(exit.verdict, WorkerVerdict::Proven | WorkerVerdict::Bug(_)) {
                        concluded.push(i);
                    }
                    exits[i] = Some(*exit);
                }
                Err(_) => break, // all senders dropped: every worker exited
            }
        }
        if let Some(&winner) = concluded.iter().min() {
            // Stop the survivors and collect their exits.
            for &i in &living {
                if alive[i] {
                    let _ = to_workers[i].send(CoordMsg::Stop);
                }
            }
            drain_exits(from_workers, &mut exits, &mut alive);
            // The winner index came from a received Exit message, so its
            // record is normally present; degrade to a give-up rather
            // than panicking the pool if it somehow is not.
            let verdict = match exits[winner].as_ref().map(|e| &e.verdict) {
                Some(WorkerVerdict::Proven) => Verdict::Correct,
                Some(WorkerVerdict::Bug(trace)) => Verdict::Incorrect {
                    trace: trace.clone(),
                },
                _ => Verdict::GaveUp(GiveUp::new(
                    Category::Cancelled,
                    format!("worker lost: winning engine {winner} has no exit report"),
                )),
            };
            let winner = match verdict {
                Verdict::GaveUp(_) => None,
                _ => Some(winner),
            };
            return PhaseResult {
                verdict,
                winner,
                exits: seal_exits(exits),
            };
        }
    }
    PhaseResult {
        verdict: Verdict::GaveUp(give_up_record(&exits, pcfg, false)),
        winner: None,
        exits: seal_exits(exits),
    }
}

/// Free-running coordinator: relays assertion batches as they arrive; the
/// first conclusive exit wins and flips the stop flag.
fn coordinate_free_running(
    n: usize,
    pcfg: &ParallelConfig,
    from_workers: &Receiver<WorkerMsg>,
    to_workers: &[Sender<CoordMsg>],
    stop: &Arc<AtomicBool>,
) -> PhaseResult {
    let deadline = pcfg.wall_clock_budget.map(|b| Instant::now() + b);
    let mut exits: Vec<Option<WorkerExit>> = (0..n).map(|_| None).collect();
    let mut alive: Vec<bool> = vec![true; n];
    let mut winner: Option<usize> = None;
    let mut budget_stop = false;
    // Kick the workers off: the first message releases nothing in
    // free-running mode (workers don't block), so nothing to send here.
    while alive.iter().any(|&a| a) {
        let msg = match deadline {
            Some(d) => {
                let remaining = d
                    .checked_duration_since(Instant::now())
                    .unwrap_or(Duration::ZERO);
                match from_workers.recv_timeout(remaining.max(Duration::from_millis(1))) {
                    Ok(m) => m,
                    Err(RecvTimeoutError::Timeout) => {
                        // Global budget: stop everyone, then keep draining.
                        budget_stop = true;
                        stop.store(true, Ordering::Relaxed);
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            None => match from_workers.recv() {
                Ok(m) => m,
                Err(_) => break,
            },
        };
        match msg {
            WorkerMsg::Refined { engine, batch } | WorkerMsg::RoundDone { engine, batch } => {
                if batch.is_empty() {
                    continue;
                }
                for (i, sender) in to_workers.iter().enumerate() {
                    if i != engine && alive[i] {
                        let _ = sender.send(CoordMsg::Assertions(vec![batch.clone()]));
                    }
                }
            }
            WorkerMsg::Exit(exit) => {
                let i = exit.engine;
                alive[i] = false;
                if winner.is_none()
                    && matches!(exit.verdict, WorkerVerdict::Proven | WorkerVerdict::Bug(_))
                {
                    winner = Some(i);
                    stop.store(true, Ordering::Relaxed);
                }
                exits[i] = Some(*exit);
            }
        }
    }
    drain_exits(from_workers, &mut exits, &mut alive);
    match winner {
        Some(w) => {
            // As in lockstep mode: a missing winner record degrades to a
            // give-up instead of panicking the pool.
            let verdict = match exits[w].as_ref().map(|e| &e.verdict) {
                Some(WorkerVerdict::Proven) => Verdict::Correct,
                Some(WorkerVerdict::Bug(trace)) => Verdict::Incorrect {
                    trace: trace.clone(),
                },
                _ => Verdict::GaveUp(GiveUp::new(
                    Category::Cancelled,
                    format!("worker lost: winning engine {w} has no exit report"),
                )),
            };
            let winner = match verdict {
                Verdict::GaveUp(_) => None,
                _ => Some(w),
            };
            PhaseResult {
                verdict,
                winner,
                exits: seal_exits(exits),
            }
        }
        None => PhaseResult {
            verdict: Verdict::GaveUp(give_up_record(&exits, pcfg, budget_stop)),
            winner: None,
            exits: seal_exits(exits),
        },
    }
}

/// Receives the remaining `Exit` messages after a stop was requested.
fn drain_exits(
    from_workers: &Receiver<WorkerMsg>,
    exits: &mut [Option<WorkerExit>],
    alive: &mut [bool],
) {
    while alive.iter().any(|&a| a) {
        match from_workers.recv() {
            Ok(WorkerMsg::Exit(exit)) => {
                let i = exit.engine;
                alive[i] = false;
                exits[i] = Some(*exit);
            }
            Ok(_) => {} // late refinement chatter
            // Disconnection with workers still marked alive: their exits
            // are lost; seal_exits quarantines them as give-ups.
            Err(_) => break,
        }
    }
}

/// The give-up recorded for a worker whose exit report never arrived
/// (channel disconnected before the `Exit` message): the pool degrades
/// gracefully — the lost worker is quarantined as a give-up instead of
/// poisoning the run with a panic.
fn worker_lost(engine: usize) -> WorkerExit {
    WorkerExit {
        engine,
        verdict: WorkerVerdict::GaveUp(GiveUp::new(
            Category::Cancelled,
            format!("worker lost: engine {engine} exited without a report"),
        )),
        stats: EngineStats::default(),
        proof_size: 0,
        hoare_checks: 0,
        assertions: Vec::new(),
        certificate: None,
    }
}

/// Replaces any missing exit with a quarantine record and sorts by engine
/// index.
fn seal_exits(exits: Vec<Option<WorkerExit>>) -> Vec<WorkerExit> {
    exits
        .into_iter()
        .enumerate()
        .map(|(i, e)| e.unwrap_or_else(|| worker_lost(i)))
        .collect()
}

/// Structured give-up when no engine concluded. If every engine simply
/// ran out of refinement rounds that is the aggregate cause; otherwise the
/// first give-up in engine-index order (deterministic) names the category.
/// `budget_stop` records that the coordinator stopped the pool because the
/// global wall-clock budget expired — the root cause when every engine
/// only reports `cancelled`.
fn give_up_record(
    exits: &[Option<WorkerExit>],
    pcfg: &ParallelConfig,
    budget_stop: bool,
) -> GiveUp {
    let all_budget = exits
        .iter()
        .flatten()
        .all(|e| matches!(&e.verdict, WorkerVerdict::GaveUp(g) if g.category == Category::Rounds));
    if all_budget {
        return GiveUp::new(
            Category::Rounds,
            format!(
                "no proof within {} rounds on any engine",
                pcfg.max_rounds_per_engine
            ),
        );
    }
    // Prefer a root-cause category: an engine cancelled by the shared stop
    // flag only echoes whichever engine tripped first, so a `cancelled`
    // exit must not mask a deadline/budget exit elsewhere in the pool.
    let give_ups = || {
        exits.iter().flatten().filter_map(|e| match &e.verdict {
            WorkerVerdict::GaveUp(g) => Some(g),
            _ => None,
        })
    };
    let root_cause = give_ups().find(|g| g.category != Category::Cancelled);
    if root_cause.is_none() && budget_stop {
        return GiveUp::new(
            Category::Deadline,
            "global wall-clock budget exhausted before any engine concluded",
        );
    }
    match root_cause.or_else(|| give_ups().next()) {
        Some(g) => GiveUp::new(
            g.category,
            format!("every portfolio engine gave up (e.g. {})", g.reason),
        ),
        None => GiveUp::new(Category::Cancelled, "every portfolio engine gave up"),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    crate::govern::panic_reason(payload.as_ref())
}
