//! The combined space-efficient reduction `(S⋖(A))↓πS` (§6.2, Thm. 6.6),
//! built explicitly.
//!
//! The verifier never materializes this automaton — Algorithm 2 constructs
//! it on the fly during the proof check — but the explicit construction is
//! what the language-theoretic experiments (reduction sizes, Thm. 7.2's
//! linear bound) and the soundness/minimality property tests run on.

use crate::order::{OrderContext, PreferenceOrder};
use crate::persistent::{MembraneMode, PersistentSets};
use automata::bitset::BitSet;
use automata::dfa::{Dfa, DfaBuilder, StateId};
use program::commutativity::CommutativityOracle;
use program::concurrent::{LetterId, ProductState, Program, Spec};
use smt::term::TermPool;
use std::collections::HashMap;

/// Which reduction machinery to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReductionConfig {
    /// Apply sleep sets (language-minimality, §5).
    pub use_sleep: bool,
    /// Apply weakly persistent membranes (state pruning, §6).
    pub use_persistent: bool,
    /// Safety bound on constructed states.
    pub max_states: usize,
}

impl Default for ReductionConfig {
    fn default() -> Self {
        ReductionConfig {
            use_sleep: true,
            use_persistent: true,
            max_states: 1_000_000,
        }
    }
}

/// Builds the reduction automaton of `program` for `spec` under `order`.
///
/// With both flags on this is `(S⋖(P))↓πS` — language-minimal *and*
/// space-efficient (Thm. 6.6); with only `use_sleep` it is the sleep set
/// automaton `S⋖(P)` (§5); with only `use_persistent` a plain π-reduction;
/// with neither, the interleaving product itself.
///
/// For [`Spec::ErrorOf`] the construction stops expanding at accepting
/// states: every extension of an accepted word is subsumed by the shorter
/// witness for the purposes of verification.
///
/// # Panics
///
/// Panics if more than `config.max_states` states are constructed.
pub fn reduction_automaton(
    pool: &mut TermPool,
    program: &Program,
    spec: Spec,
    order: &dyn PreferenceOrder,
    oracle: &mut CommutativityOracle,
    config: ReductionConfig,
) -> Dfa<LetterId> {
    type RState = (ProductState, BitSet, OrderContext);

    let membrane_mode = match spec {
        Spec::PrePost => MembraneMode::Terminal,
        Spec::ErrorOf(t) => MembraneMode::ErrorThread(t),
    };
    let persistent = config
        .use_persistent
        .then(|| PersistentSets::new(pool, program, oracle));

    let n_letters = program.num_letters();
    let mut builder = DfaBuilder::new();
    let mut ids: HashMap<RState, StateId> = HashMap::new();

    let start: RState = (program.initial_state(), BitSet::new(n_letters), 0);
    let start_id = builder.add_state(program.is_accepting(&start.0, spec));
    ids.insert(start.clone(), start_id);
    let mut work = vec![start];

    while let Some((q, sleep, ctx)) = work.pop() {
        let from = ids[&(q.clone(), sleep.clone(), ctx)];
        if matches!(spec, Spec::ErrorOf(_)) && program.is_accepting(&q, spec) {
            continue; // stop at accepting states in assert mode
        }
        let enabled = program.enabled(&q);
        // π(q) restriction (πS = π(q) \ S is applied below together with
        // the sleep filter).
        let explore: Vec<LetterId> = match &persistent {
            Some(ps) => ps.compute(program, &q, order, ctx, membrane_mode),
            None => enabled.clone(),
        };
        for &a in &explore {
            if config.use_sleep && sleep.contains(a.index()) {
                continue;
            }
            let target = program.step(&q, a).expect("explored letter is enabled");
            let next_sleep = if config.use_sleep {
                let mut s = BitSet::new(n_letters);
                for &b in &enabled {
                    let earlier = sleep.contains(b.index()) || order.less(ctx, b, a, program);
                    if earlier && oracle.commute(pool, program, a, b) {
                        s.insert(b.index());
                    }
                }
                s
            } else {
                BitSet::new(n_letters)
            };
            let next_ctx = order.step(ctx, a, program);
            let key: RState = (target, next_sleep, next_ctx);
            let to = match ids.get(&key) {
                Some(&id) => id,
                None => {
                    assert!(
                        builder.num_states() < config.max_states,
                        "reduction automaton exceeded {} states",
                        config.max_states
                    );
                    let id = builder.add_state(program.is_accepting(&key.0, spec));
                    ids.insert(key.clone(), id);
                    work.push(key);
                    id
                }
            };
            builder.add_transition(from, a, to);
        }
    }
    builder.build(start_id)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::mazurkiewicz::{check_reduction_minimal, check_reduction_sound};
    use crate::order::{LockstepOrder, RandomOrder, SeqOrder};
    use automata::dfa::DfaBuilder as CfgBuilder;
    use automata::explore::{accepted_words, bounded_equal};
    use program::commutativity::CommutativityLevel;
    use program::stmt::{SimpleStmt, Statement};
    use program::thread::{Thread, ThreadId};
    use smt::linear::LinExpr;

    /// n threads, each a single private write (full commutativity).
    fn independent(pool: &mut TermPool, n: u32) -> Program {
        let mut b = Program::builder("ind");
        let mut letters = Vec::new();
        for t in 0..n {
            let v = pool.var(&format!("x{t}"));
            b.add_global(v, 0);
            letters.push(b.add_statement(Statement::simple(
                ThreadId(t),
                &format!("w{t}"),
                SimpleStmt::Assign(v, LinExpr::constant(1)),
                pool,
            )));
        }
        for t in 0..n as usize {
            let mut cfg = CfgBuilder::new();
            let entry = cfg.add_state(false);
            let exit = cfg.add_state(true);
            cfg.add_transition(entry, letters[t], exit);
            b.add_thread(Thread::new("t", cfg.build(entry), BitSet::new(2)));
        }
        b.build(pool)
    }

    /// Figure 2a: each thread loops `a_i b_i` and can exit with `c_i`; all
    /// variables are private, so commutativity is full.
    fn figure2a(pool: &mut TermPool) -> Program {
        let mut b = Program::builder("fig2a");
        let mut letters = Vec::new();
        for t in 0..2u32 {
            let v = pool.var(&format!("p{t}"));
            b.add_global(v, 0);
            let a = b.add_statement(Statement::simple(
                ThreadId(t),
                &format!("a{t}"),
                SimpleStmt::Assign(v, LinExpr::constant(1)),
                pool,
            ));
            let bb = b.add_statement(Statement::simple(
                ThreadId(t),
                &format!("b{t}"),
                SimpleStmt::Assign(v, LinExpr::constant(2)),
                pool,
            ));
            let c = b.add_statement(Statement::simple(
                ThreadId(t),
                &format!("c{t}"),
                SimpleStmt::Assign(v, LinExpr::constant(3)),
                pool,
            ));
            letters.push((a, bb, c));
        }
        for t in 0..2usize {
            let (a, bb, c) = letters[t];
            let mut cfg = CfgBuilder::new();
            let l1 = cfg.add_state(false);
            let l2 = cfg.add_state(false);
            let l3 = cfg.add_state(true);
            cfg.add_transition(l1, a, l2);
            cfg.add_transition(l2, bb, l1);
            cfg.add_transition(l1, c, l3);
            b.add_thread(Thread::new("t", cfg.build(l1), BitSet::new(3)));
        }
        b.build(pool)
    }

    fn full_commute(p: &Program) -> impl Fn(LetterId, LetterId) -> bool + Copy + '_ {
        |a, b| p.thread_of(a) != p.thread_of(b)
    }

    #[test]
    fn combined_equals_sleep_language_thm_6_6() {
        let mut pool = TermPool::new();
        let p = figure2a(&mut pool);
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Syntactic);
        let sleep_only = reduction_automaton(
            &mut pool,
            &p,
            Spec::PrePost,
            &SeqOrder::new(),
            &mut oracle,
            ReductionConfig {
                use_sleep: true,
                use_persistent: false,
                max_states: 100_000,
            },
        );
        let combined = reduction_automaton(
            &mut pool,
            &p,
            Spec::PrePost,
            &SeqOrder::new(),
            &mut oracle,
            ReductionConfig::default(),
        );
        assert!(
            bounded_equal(&sleep_only, &combined, 8),
            "π-reduction must not change the recognized reduction"
        );
        assert!(
            combined.num_states() <= sleep_only.num_states(),
            "π-reduction prunes states: {} vs {}",
            combined.num_states(),
            sleep_only.num_states()
        );
    }

    #[test]
    fn reduction_sound_and_minimal_for_all_orders() {
        let mut pool = TermPool::new();
        let p = figure2a(&mut pool);
        let full = p.explicit_product(Spec::PrePost);
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Syntactic);
        let commute = full_commute(&p);
        for order in [
            Box::new(SeqOrder::new()) as Box<dyn PreferenceOrder>,
            Box::new(LockstepOrder::new()),
            Box::new(RandomOrder::new(1)),
            Box::new(RandomOrder::new(2)),
        ] {
            let red = reduction_automaton(
                &mut pool,
                &p,
                Spec::PrePost,
                order.as_ref(),
                &mut oracle,
                ReductionConfig::default(),
            );
            let bound = 6;
            let full_words = accepted_words(&full, bound);
            let red_words = accepted_words(&red, bound);
            // Soundness needs care at the bound: a class whose minimal
            // representative is longer than the bound can't witness. Here
            // all classes have equal-length members, so this is exact.
            check_reduction_sound(&full_words, &red_words, commute)
                .unwrap_or_else(|w| panic!("unsound under {}: {w:?}", order.name()));
            check_reduction_minimal(&red_words, commute)
                .unwrap_or_else(|(u, v)| panic!("redundant under {}: {u:?} {v:?}", order.name()));
        }
    }

    #[test]
    fn lockstep_reduction_picks_round_robin_representative() {
        let mut pool = TermPool::new();
        let p = figure2a(&mut pool);
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Syntactic);
        let red = reduction_automaton(
            &mut pool,
            &p,
            Spec::PrePost,
            &LockstepOrder::new(),
            &mut oracle,
            ReductionConfig::default(),
        );
        // Letters: thread 0 = {a0=0, b0=1, c0=2}, thread 1 = {a1=3, b1=4, c1=5}.
        let (a0, b0, c0) = (LetterId(0), LetterId(1), LetterId(2));
        let (a1, b1, c1) = (LetterId(3), LetterId(4), LetterId(5));
        // Figure 2b: the lockstep word a0 a1 b0 b1 c0 c1 is accepted...
        assert!(red.accepts([a0, a1, b0, b1, c0, c1].iter().copied()));
        // ...and the fully sequential equivalent word is not.
        assert!(!red.accepts([a0, b0, c0, a1, b1, c1].iter().copied()));
    }

    #[test]
    fn thm_7_2_linear_size_under_seq_order() {
        // Under a thread-uniform non-positional order and full
        // commutativity, the combined automaton has O(size(P)) states,
        // while the product has exponentially many.
        let mut pool = TermPool::new();
        let mut reduced_sizes = Vec::new();
        for n in 1..=6u32 {
            let p = independent(&mut pool, n);
            let mut oracle = CommutativityOracle::new(CommutativityLevel::Syntactic);
            let red = reduction_automaton(
                &mut pool,
                &p,
                Spec::PrePost,
                &SeqOrder::new(),
                &mut oracle,
                ReductionConfig::default(),
            );
            reduced_sizes.push((p.size(), red.num_states()));
        }
        for &(size, states) in &reduced_sizes {
            assert!(
                states <= size,
                "expected ≤ size(P) = {size} states, got {states}"
            );
        }
        // The product for n = 6 has 2^6 = 64 states; the reduction has 7.
        assert_eq!(reduced_sizes[5].1, 7);
    }

    #[test]
    fn no_reduction_flags_gives_the_product() {
        let mut pool = TermPool::new();
        let p = independent(&mut pool, 3);
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Syntactic);
        let none = reduction_automaton(
            &mut pool,
            &p,
            Spec::PrePost,
            &SeqOrder::new(),
            &mut oracle,
            ReductionConfig {
                use_sleep: false,
                use_persistent: false,
                max_states: 100_000,
            },
        );
        let product = p.explicit_product(Spec::PrePost);
        assert!(bounded_equal(&none, &product, 4));
        assert_eq!(none.num_states(), product.num_states());
    }

    #[test]
    fn persistent_only_is_sound_but_not_minimal_in_general() {
        let mut pool = TermPool::new();
        let p = figure2a(&mut pool);
        let full = p.explicit_product(Spec::PrePost);
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Syntactic);
        let red = reduction_automaton(
            &mut pool,
            &p,
            Spec::PrePost,
            &SeqOrder::new(),
            &mut oracle,
            ReductionConfig {
                use_sleep: false,
                use_persistent: true,
                max_states: 100_000,
            },
        );
        let commute = full_commute(&p);
        let bound = 6;
        check_reduction_sound(
            &accepted_words(&full, bound),
            &accepted_words(&red, bound),
            commute,
        )
        .expect("π-reduction alone is sound");
    }
}
