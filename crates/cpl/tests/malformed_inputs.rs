//! Robustness corpus: no CPL input — however malformed or adversarial —
//! may panic the frontend. Every input must come back as `Ok(program)` or
//! a structured `Err(Error)` diagnostic.

use cpl::compile;
use smt::term::TermPool;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Compiles `src` inside `catch_unwind`, panicking the *test* (with the
/// input attached) only if the frontend itself panicked.
fn must_not_panic(name: &str, src: &str) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut pool = TermPool::new();
        compile(src, &mut pool).map(|p| p.name().to_owned())
    }));
    assert!(
        result.is_ok(),
        "frontend panicked on malformed input `{name}`:\n{src}"
    );
}

#[test]
fn malformed_corpus_never_panics() {
    let corpus: &[(&str, String)] = &[
        ("empty", String::new()),
        ("garbage", "@#$%^&*".to_owned()),
        ("truncated-thread", "thread t {".to_owned()),
        ("truncated-var", "var x".to_owned()),
        ("truncated-expr", "var x: int = ;".to_owned()),
        ("stray-close", "}}}}".to_owned()),
        (
            "keyword-soup",
            "var thread spawn assert if while".to_owned(),
        ),
        (
            "huge-int-literal",
            format!("var x: int = {};", "9".repeat(60)),
        ),
        (
            "int-literal-overflow-expr",
            "var x: int; thread t { x := 170141183460469231731687303715884105728; } spawn t;"
                .to_owned(),
        ),
        (
            "deep-parens",
            format!(
                "var x: int = {}1{};",
                "(".repeat(100_000),
                ")".repeat(100_000)
            ),
        ),
        (
            "deep-negation",
            format!(
                "var b: bool; thread t {{ b := {}b; }} spawn t;",
                "!".repeat(100_000)
            ),
        ),
        ("deep-if-nesting", {
            let mut s = String::from("var x: int; thread t { ");
            s.push_str(&"if (*) { ".repeat(10_000));
            s.push_str("skip; ");
            s.push_str(&"} ".repeat(10_000));
            s.push_str("} spawn t;");
            s
        }),
        (
            "spawn-bomb",
            "thread t { skip; } spawn t * 4000000000;".to_owned(),
        ),
        ("spawn-zero", "thread t { skip; } spawn t * 0;".to_owned()),
        ("spawn-undeclared", "spawn ghost;".to_owned()),
        (
            "undeclared-var",
            "thread t { nosuchvar := 1; } spawn t;".to_owned(),
        ),
        (
            "undeclared-in-assert",
            "thread t { assert ghost > 0; } spawn t;".to_owned(),
        ),
        (
            "type-confusion",
            "var b: bool; thread t { b := b + 1; } spawn t;".to_owned(),
        ),
        (
            "nonlinear-multiplication",
            "var x: int; var y: int; thread t { x := x * y; } spawn t;".to_owned(),
        ),
        (
            "bool-arithmetic-guard",
            "var b: bool; thread t { if (b + b) { skip; } } spawn t;".to_owned(),
        ),
        (
            "while-inside-atomic",
            "var x: int; thread t { atomic { while (x < 3) { x := x + 1; } } } spawn t;".to_owned(),
        ),
        ("atomic-path-explosion", {
            let mut s = String::from("var b: bool; thread t { atomic { ");
            s.push_str(&"b := !b || b; ".repeat(32));
            s.push_str("} } spawn t;");
            s
        }),
        (
            "requires-undeclared",
            "requires ghost == 0; thread t { skip; } spawn t;".to_owned(),
        ),
        (
            "non-constant-initializer",
            "var x: int; var y: int = x + 1; thread t { skip; } spawn t;".to_owned(),
        ),
        ("unterminated-comment-ish", "var x: int; //".to_owned()),
        (
            "non-ascii",
            "var ⊥: int; thread t { skip; } spawn t;".to_owned(),
        ),
        ("nul-bytes", "var x\0: int;\0".to_owned()),
    ];
    for (name, src) in corpus {
        must_not_panic(name, src);
    }
}

#[test]
fn deep_nesting_is_a_diagnostic_not_a_crash() {
    let mut pool = TermPool::new();
    let src = format!(
        "var x: int = {}1{};",
        "(".repeat(100_000),
        ")".repeat(100_000)
    );
    let err = compile(&src, &mut pool).expect_err("deep nesting must be rejected");
    assert!(
        err.message.contains("nested deeper"),
        "unexpected diagnostic: {}",
        err.message
    );
}

#[test]
fn spawn_bomb_is_a_diagnostic_not_a_hang() {
    let mut pool = TermPool::new();
    let err = compile("thread t { skip; } spawn t * 4000000000;", &mut pool)
        .expect_err("spawn bomb must be rejected");
    assert!(
        err.message.contains("threads"),
        "unexpected diagnostic: {}",
        err.message
    );
}
