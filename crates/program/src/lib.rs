//! The concurrent program model of the paper (§3).
//!
//! A concurrent program `P = T1 ∥ … ∥ Tn` is a fixed list of threads, each
//! given as a control-flow DFA over a *global alphabet of statements*: one
//! letter per statement, with the statements of different threads disjoint
//! by construction (each [`stmt::Statement`] carries its owning thread).
//!
//! * [`stmt`] — statements as transition formulas: `assume`, assignments,
//!   `havoc`, and `atomic` blocks (a whole block is a single letter whose
//!   relation is the disjunction over its internal paths);
//! * [`var`] — program variables, SSA version tracking;
//! * [`thread`] / [`concurrent`] — thread CFGs and the interleaving
//!   product (explored on demand: the exponential product is never built
//!   unless explicitly requested for tests);
//! * [`commutativity`] — the three-level commutativity oracle (syntactic,
//!   semantic, conditional/proof-sensitive) with caching;
//! * [`interp`] — a concrete explicit-state interpreter and bounded model
//!   checker used for differential testing and witness validation.

pub mod commutativity;
pub mod concurrent;
pub mod interp;
pub mod stmt;
pub mod thread;
pub mod var;

pub use commutativity::CommutativityOracle;
pub use concurrent::{LetterId, ProductState, Program, ProgramBuilder, Spec};
pub use stmt::{SimpleStmt, Statement};
pub use thread::{Thread, ThreadId};
pub use var::Versions;
