//! Cross-crate integration: the full pipeline (CPL → program → reduction →
//! verifier) on corpus benchmarks, across configurations, checked against
//! ground truth.

use seqver::bench_suite::{self, Expected};
use seqver::gemcutter::verify::{verify, Verdict, VerifierConfig};
use seqver::smt::TermPool;

/// The fast subset used by integration tests (full corpus runs in the
/// bench harness binaries).
fn fast_corpus() -> Vec<bench_suite::Benchmark> {
    bench_suite::all()
        .into_iter()
        .filter(|b| !b.name.ends_with("-3") && !b.name.ends_with("-4"))
        .collect()
}

fn check_against_ground_truth(config: &VerifierConfig) {
    for b in fast_corpus() {
        let mut pool = TermPool::new();
        let p = b.compile(&mut pool);
        let outcome = verify(&mut pool, &p, config);
        match (&outcome.verdict, b.expected) {
            (Verdict::Correct, Expected::Safe) => {}
            (Verdict::Incorrect { .. }, Expected::Unsafe) => {}
            (Verdict::GaveUp(give_up), _) => {
                panic!("{} [{}]: gave up ({give_up})", b.name, config.name)
            }
            (v, e) => panic!(
                "{} [{}]: verdict {v:?} vs expected {e:?}",
                b.name, config.name
            ),
        }
    }
}

#[test]
fn gemcutter_seq_matches_ground_truth() {
    check_against_ground_truth(&VerifierConfig::gemcutter_seq());
}

#[test]
fn gemcutter_lockstep_matches_ground_truth() {
    check_against_ground_truth(&VerifierConfig::gemcutter_lockstep());
}

#[test]
fn gemcutter_random_matches_ground_truth() {
    check_against_ground_truth(&VerifierConfig::gemcutter_random(1));
}

#[test]
fn sleep_only_matches_ground_truth() {
    check_against_ground_truth(&VerifierConfig::sleep_only());
}

#[test]
fn persistent_only_matches_ground_truth() {
    check_against_ground_truth(&VerifierConfig::persistent_only());
}

#[test]
fn automizer_baseline_matches_ground_truth() {
    check_against_ground_truth(&VerifierConfig::automizer());
}

#[test]
fn proof_sensitivity_off_matches_ground_truth() {
    check_against_ground_truth(&VerifierConfig::gemcutter_seq().without_proof_sensitivity());
}

#[test]
fn buggy_witnesses_replay_concretely() {
    use seqver::program::interp::Interpreter;
    for b in fast_corpus() {
        if b.expected != Expected::Unsafe {
            continue;
        }
        let mut pool = TermPool::new();
        let p = b.compile(&mut pool);
        let outcome = verify(&mut pool, &p, &VerifierConfig::gemcutter_seq());
        let Verdict::Incorrect { trace } = &outcome.verdict else {
            panic!("{}: bug not found", b.name);
        };
        let interp = Interpreter::new(&p).with_havoc_domain(vec![0, 1, 2, 3, 10]);
        assert!(
            interp.replay(&pool, trace),
            "{}: SMT witness does not replay concretely",
            b.name
        );
    }
}
