#![allow(clippy::needless_range_loop)]
//! End-to-end verification of small hand-built concurrent programs, with
//! every configuration the paper evaluates, cross-checked against the
//! explicit-state interpreter.

use automata::bitset::BitSet;
use automata::dfa::DfaBuilder;
use gemcutter::portfolio::{default_portfolio, portfolio_verify};
use gemcutter::verify::{verify, Verdict, VerifierConfig};
use program::concurrent::{Program, Spec};
use program::interp::{Interpreter, SearchResult};
use program::stmt::{SimpleStmt, Statement};
use program::thread::{Thread, ThreadId};
use smt::linear::LinExpr;
use smt::term::TermPool;

/// `n` worker threads each add `k` to a shared counter; one checker thread
/// asserts `counter ≤ n·k` at the end (after all workers are *forced* done
/// via a completion count). Correct iff `bound ≥ n·k`.
fn counter_program(pool: &mut TermPool, n: u32, k: i128, bound: i128) -> Program {
    let mut b = Program::builder("counter");
    let counter = pool.var("counter");
    let done = pool.var("done");
    b.add_global(counter, 0);
    b.add_global(done, 0);
    // Worker threads.
    let mut worker_letters = Vec::new();
    for t in 0..n {
        let add = b.add_statement(Statement::atomic(
            ThreadId(t),
            &format!("w{t}: counter += {k}; done += 1"),
            vec![vec![
                SimpleStmt::Assign(counter, LinExpr::var(counter).add(&LinExpr::constant(k))),
                SimpleStmt::Assign(done, LinExpr::var(done).add(&LinExpr::constant(1))),
            ]],
            pool,
        ));
        worker_letters.push(add);
    }
    // Checker thread: wait for all workers, then assert counter ≤ bound.
    let all_done = pool.ge_const(done, n as i128);
    let wait = b.add_statement(Statement::simple(
        ThreadId(n),
        "await done = n",
        SimpleStmt::Assume(all_done),
        pool,
    ));
    let ok_guard = pool.le_const(counter, bound);
    let bad_guard = pool.not(ok_guard);
    let ok = b.add_statement(Statement::simple(
        ThreadId(n),
        "assert ok",
        SimpleStmt::Assume(ok_guard),
        pool,
    ));
    let bad = b.add_statement(Statement::simple(
        ThreadId(n),
        "assert fails",
        SimpleStmt::Assume(bad_guard),
        pool,
    ));
    for t in 0..n as usize {
        let mut cfg = DfaBuilder::new();
        let entry = cfg.add_state(false);
        let exit = cfg.add_state(true);
        cfg.add_transition(entry, worker_letters[t], exit);
        b.add_thread(Thread::new(
            &format!("worker{t}"),
            cfg.build(entry),
            BitSet::new(2),
        ));
    }
    {
        let mut cfg = DfaBuilder::new();
        let entry = cfg.add_state(false);
        let waited = cfg.add_state(false);
        let exit = cfg.add_state(true);
        let err = cfg.add_state(false);
        cfg.add_transition(entry, wait, waited);
        cfg.add_transition(waited, ok, exit);
        cfg.add_transition(waited, bad, err);
        let mut errors = BitSet::new(4);
        errors.insert(err.index());
        b.add_thread(Thread::new("checker", cfg.build(entry), errors));
    }
    b.build(pool)
}

/// Simple lock-based mutual exclusion: two threads do
/// `acquire; critical := critical + 1; assert critical = 1; critical -= 1; release`.
/// Correct with the lock; the `broken` variant skips the lock.
fn mutex_program(pool: &mut TermPool, broken: bool) -> Program {
    let mut b = Program::builder(if broken { "mutex-broken" } else { "mutex" });
    let lock = pool.var("lock");
    let critical = pool.var("critical");
    b.add_global(lock, 0);
    b.add_global(critical, 0);
    let mut cfg_letters = Vec::new();
    for t in 0..2u32 {
        let lock_free = pool.eq_const(lock, 0);
        let acquire = b.add_statement(Statement::atomic(
            ThreadId(t),
            "acquire",
            vec![if broken {
                vec![]
            } else {
                vec![
                    SimpleStmt::Assume(lock_free),
                    SimpleStmt::Assign(lock, LinExpr::constant(1)),
                ]
            }],
            pool,
        ));
        let enter_crit = b.add_statement(Statement::simple(
            ThreadId(t),
            "critical += 1",
            SimpleStmt::Assign(critical, LinExpr::var(critical).add(&LinExpr::constant(1))),
            pool,
        ));
        let one = pool.eq_const(critical, 1);
        let not_one = pool.not(one);
        let ok = b.add_statement(Statement::simple(
            ThreadId(t),
            "assert",
            SimpleStmt::Assume(one),
            pool,
        ));
        let bad = b.add_statement(Statement::simple(
            ThreadId(t),
            "assert fails",
            SimpleStmt::Assume(not_one),
            pool,
        ));
        let leave_crit = b.add_statement(Statement::simple(
            ThreadId(t),
            "critical -= 1",
            SimpleStmt::Assign(critical, LinExpr::var(critical).sub(&LinExpr::constant(1))),
            pool,
        ));
        let release = b.add_statement(Statement::simple(
            ThreadId(t),
            "release",
            SimpleStmt::Assign(lock, LinExpr::constant(0)),
            pool,
        ));
        cfg_letters.push((acquire, enter_crit, ok, bad, leave_crit, release));
    }
    for t in 0..2usize {
        let (acquire, enter_crit, ok, bad, leave_crit, release) = cfg_letters[t];
        let mut cfg = DfaBuilder::new();
        let q0 = cfg.add_state(false);
        let q1 = cfg.add_state(false);
        let q2 = cfg.add_state(false);
        let q3 = cfg.add_state(false);
        let q4 = cfg.add_state(false);
        let exit = cfg.add_state(true);
        let err = cfg.add_state(false);
        cfg.add_transition(q0, acquire, q1);
        cfg.add_transition(q1, enter_crit, q2);
        cfg.add_transition(q2, ok, q3);
        cfg.add_transition(q2, bad, err);
        cfg.add_transition(q3, leave_crit, q4);
        cfg.add_transition(q4, release, exit);
        let mut errors = BitSet::new(7);
        errors.insert(err.index());
        b.add_thread(Thread::new(&format!("t{t}"), cfg.build(q0), errors));
    }
    b.build(pool)
}

#[test]
fn correct_counter_proved_by_all_configs() {
    for config in [
        VerifierConfig::gemcutter_seq(),
        VerifierConfig::gemcutter_lockstep(),
        VerifierConfig::gemcutter_random(1),
        VerifierConfig::sleep_only(),
        VerifierConfig::persistent_only(),
        VerifierConfig::automizer(),
    ] {
        let mut pool = TermPool::new();
        let p = counter_program(&mut pool, 2, 3, 6);
        let outcome = verify(&mut pool, &p, &config);
        assert!(
            outcome.verdict.is_correct(),
            "{} failed: {:?}",
            config.name,
            outcome.verdict
        );
    }
}

#[test]
fn buggy_counter_found_by_all_configs() {
    for config in [
        VerifierConfig::gemcutter_seq(),
        VerifierConfig::gemcutter_lockstep(),
        VerifierConfig::automizer(),
    ] {
        let mut pool = TermPool::new();
        let p = counter_program(&mut pool, 2, 3, 5); // 2·3 = 6 > 5
        let outcome = verify(&mut pool, &p, &config);
        let Verdict::Incorrect { trace } = &outcome.verdict else {
            panic!("{} missed the bug: {:?}", config.name, outcome.verdict);
        };
        // The witness must replay concretely.
        let interp = Interpreter::new(&p);
        assert!(interp.replay(&pool, trace), "witness does not replay");
    }
}

#[test]
fn verifier_agrees_with_explicit_state_search() {
    for (n, k, bound) in [(1, 1, 1), (1, 1, 0), (2, 2, 4), (2, 2, 3), (3, 1, 3)] {
        let mut pool = TermPool::new();
        let p = counter_program(&mut pool, n, k, bound);
        let outcome = verify(&mut pool, &p, &VerifierConfig::gemcutter_seq());
        let interp = Interpreter::new(&p);
        let search = interp.search(&pool, Spec::ErrorOf(ThreadId(n)), 100_000);
        match (&outcome.verdict, &search) {
            (
                Verdict::Correct,
                SearchResult::NoErrorFound {
                    exhaustive: true, ..
                },
            ) => {}
            (Verdict::Incorrect { .. }, SearchResult::ErrorReachable(_)) => {}
            other => panic!("disagreement on n={n} k={k} bound={bound}: {other:?}"),
        }
    }
}

#[test]
fn mutex_correct_and_broken() {
    let mut pool = TermPool::new();
    let good = mutex_program(&mut pool, false);
    let outcome = verify(&mut pool, &good, &VerifierConfig::gemcutter_seq());
    assert!(outcome.verdict.is_correct(), "{:?}", outcome.verdict);

    let mut pool2 = TermPool::new();
    let bad = mutex_program(&mut pool2, true);
    let outcome2 = verify(&mut pool2, &bad, &VerifierConfig::gemcutter_seq());
    let Verdict::Incorrect { trace } = &outcome2.verdict else {
        panic!("missed race: {:?}", outcome2.verdict);
    };
    let interp = Interpreter::new(&bad);
    assert!(interp.replay(&pool2, trace));
}

/// Thread 0 asserts `y = 0` (y is never written); threads 1..=n each
/// perform two private writes. Everything commutes, so the reduction
/// collapses the exponential product.
fn independent_workers(pool: &mut TermPool, n: u32) -> Program {
    let mut b = Program::builder("independent");
    let y = pool.var("y");
    b.add_global(y, 0);
    let zero = pool.eq_const(y, 0);
    let nonzero = pool.not(zero);
    let ok = b.add_statement(Statement::simple(
        ThreadId(0),
        "assert ok",
        SimpleStmt::Assume(zero),
        pool,
    ));
    let bad = b.add_statement(Statement::simple(
        ThreadId(0),
        "assert fails",
        SimpleStmt::Assume(nonzero),
        pool,
    ));
    let mut worker_letters = Vec::new();
    for t in 1..=n {
        let x = pool.var(&format!("x{t}"));
        b.add_global(x, 0);
        let w1 = b.add_statement(Statement::simple(
            ThreadId(t),
            "x := 1",
            SimpleStmt::Assign(x, LinExpr::constant(1)),
            pool,
        ));
        let w2 = b.add_statement(Statement::simple(
            ThreadId(t),
            "x := 2",
            SimpleStmt::Assign(x, LinExpr::constant(2)),
            pool,
        ));
        worker_letters.push((w1, w2));
    }
    {
        let mut cfg = DfaBuilder::new();
        let entry = cfg.add_state(false);
        let exit = cfg.add_state(true);
        let err = cfg.add_state(false);
        cfg.add_transition(entry, ok, exit);
        cfg.add_transition(entry, bad, err);
        let mut errors = BitSet::new(3);
        errors.insert(err.index());
        b.add_thread(Thread::new("checker", cfg.build(entry), errors));
    }
    for &(w1, w2) in &worker_letters {
        let mut cfg = DfaBuilder::new();
        let q0 = cfg.add_state(false);
        let q1 = cfg.add_state(false);
        let q2 = cfg.add_state(true);
        cfg.add_transition(q0, w1, q1);
        cfg.add_transition(q1, w2, q2);
        b.add_thread(Thread::new("worker", cfg.build(q0), BitSet::new(3)));
    }
    b.build(pool)
}

#[test]
fn gemcutter_beats_automizer_at_scale() {
    // With independent workers the membrane construction prunes the entire
    // exponential product down to the asserting thread's own moves, while
    // the baseline sweeps 3^n location vectors.
    let mut pool = TermPool::new();
    let p = independent_workers(&mut pool, 6);
    let gem = verify(&mut pool, &p, &VerifierConfig::gemcutter_seq());
    let mut pool2 = TermPool::new();
    let p2 = independent_workers(&mut pool2, 6);
    let auto = verify(&mut pool2, &p2, &VerifierConfig::automizer());
    assert!(gem.verdict.is_correct(), "{:?}", gem.verdict);
    assert!(auto.verdict.is_correct(), "{:?}", auto.verdict);
    assert!(
        gem.stats.visited_states * 10 < auto.stats.visited_states,
        "reduction must shrink the explored space at scale: {} vs {}",
        gem.stats.visited_states,
        auto.stats.visited_states
    );
    assert!(gem.stats.rounds <= auto.stats.rounds);
}

#[test]
fn rounds_never_worse_on_counter() {
    let mut pool = TermPool::new();
    let p = counter_program(&mut pool, 3, 1, 3);
    let gem = verify(&mut pool, &p, &VerifierConfig::gemcutter_seq());
    let mut pool2 = TermPool::new();
    let p2 = counter_program(&mut pool2, 3, 1, 3);
    let auto = verify(&mut pool2, &p2, &VerifierConfig::automizer());
    assert!(gem.verdict.is_correct() && auto.verdict.is_correct());
    assert!(
        gem.stats.rounds <= auto.stats.rounds,
        "reduction needs no more refinement rounds: {} vs {}",
        gem.stats.rounds,
        auto.stats.rounds
    );
}

#[test]
fn portfolio_reports_winner() {
    let mut pool = TermPool::new();
    let p = counter_program(&mut pool, 2, 1, 2);
    let result = portfolio_verify(&mut pool, &p, &default_portfolio(), true);
    assert!(result.winner.is_some());
    assert!(result.outcome.verdict.is_correct());
}
