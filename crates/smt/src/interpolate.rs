//! Farkas-style sequence interpolants for conjunctive constraint systems.
//!
//! Given blocks `B₀, …, Bₘ` of linear constraints (over SSA variables)
//! whose conjunction is infeasible over ℚ, a Farkas certificate yields a
//! *sequence interpolant*: the partial weighted sums
//! `Iₖ = Σ_{i ∈ B₀..Bₖ} λᵢ·exprᵢ ≤ 0`. Each `Iₖ` is a single linear
//! inequality over the variables shared between the prefix and the suffix
//! (all other variables cancel, because the full sum is a constant), the
//! chain starts at a consequence of `B₀`, every step is inductive, and the
//! final element is `false`.
//!
//! This is the classic interpolation scheme of LIA-based model checkers —
//! the engine behind the paper's counting assertions like
//! `pendingIo ≥ C`. The strongest-postcondition engine in the verifier
//! crate remains the general fallback (Farkas requires conjunctive blocks
//! and rational infeasibility).

use crate::linear::{LinExpr, LinearConstraint, NormalizedConstraint, Rel};
use crate::rational::Rat;
use crate::resource::ResourceGovernor;
use crate::simplex::{check_rational_with_certificate_governed, CertResult};

/// One element of a Farkas interpolant chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Interpolant {
    /// The trivially true interpolant (empty partial sum).
    True,
    /// The contradictory final interpolant.
    False,
    /// A single inequality `expr ≤ 0`.
    Constraint(LinearConstraint),
}

/// Computes sequence interpolants for the given constraint blocks, or
/// `None` if the conjunction is not *rationally* infeasible (or the
/// arithmetic overflowed).
///
/// The result has `blocks.len() + 1` entries: entry `k` holds after blocks
/// `0..k` (so entry 0 is `True` and the last entry is `False`).
///
/// # Example
///
/// ```
/// use smt::interpolate::{farkas_sequence_interpolants, Interpolant};
/// use smt::linear::{LinExpr, LinearConstraint, NormalizedConstraint, Rel, VarId};
///
/// let x = VarId(0);
/// let mk = |e, r| match LinearConstraint::new(e, r) {
///     NormalizedConstraint::Constraint(c) => c,
///     _ => unreachable!(),
/// };
/// // B0: x ≥ 5, B1: x ≤ 2.
/// let b0 = vec![mk(LinExpr::constant(5).sub(&LinExpr::var(x)), Rel::Le0)];
/// let b1 = vec![mk(LinExpr::var(x).sub(&LinExpr::constant(2)), Rel::Le0)];
/// let chain = farkas_sequence_interpolants(&[b0, b1]).unwrap();
/// assert_eq!(chain.len(), 3);
/// assert_eq!(chain[0], Interpolant::True);
/// assert_eq!(chain[2], Interpolant::False);
/// // chain[1] is (a scaling of) 5 − x ≤ 0, i.e. x ≥ 5.
/// ```
pub fn farkas_sequence_interpolants(blocks: &[Vec<LinearConstraint>]) -> Option<Vec<Interpolant>> {
    farkas_sequence_interpolants_governed(blocks, &ResourceGovernor::unlimited())
}

/// As [`farkas_sequence_interpolants`], charging `governor` inside the
/// certificate-producing simplex run. A tripped governor yields `None`,
/// which callers already treat as "no Farkas chain available".
pub fn farkas_sequence_interpolants_governed(
    blocks: &[Vec<LinearConstraint>],
    governor: &ResourceGovernor,
) -> Option<Vec<Interpolant>> {
    let flat: Vec<LinearConstraint> = blocks.iter().flatten().cloned().collect();
    let block_of: Vec<usize> = blocks
        .iter()
        .enumerate()
        .flat_map(|(b, cs)| std::iter::repeat_n(b, cs.len()))
        .collect();
    let certificate = match check_rational_with_certificate_governed(&flat, governor) {
        CertResult::Unsat(c) => c,
        _ => return None,
    };
    debug_assert!(certificate.validate(&flat), "invalid Farkas certificate");

    // Integer-scale the coefficients (lcm of denominators).
    let mut scale: i128 = 1;
    for &(_, c) in &certificate.coefficients {
        let d = c.denominator();
        let g = crate::rational::gcd(scale, d);
        scale = scale.checked_mul(d / g)?;
    }
    let mut weights: Vec<(usize, i128)> = Vec::with_capacity(certificate.coefficients.len());
    for &(i, c) in &certificate.coefficients {
        let w = c.mul(Rat::from_int(scale)).ok()?.to_integer()?;
        weights.push((i, w));
    }

    // Partial sums per block prefix.
    let mut chain = Vec::with_capacity(blocks.len() + 1);
    chain.push(Interpolant::True);
    let mut sum = LinExpr::zero();
    for k in 0..blocks.len() {
        for &(i, w) in &weights {
            if block_of[i] == k {
                sum = sum.add(&flat[i].expr().scale(w));
            }
        }
        chain.push(match LinearConstraint::new(sum.clone(), Rel::Le0) {
            NormalizedConstraint::True => Interpolant::True,
            NormalizedConstraint::False => Interpolant::False,
            NormalizedConstraint::Constraint(c) => Interpolant::Constraint(c),
        });
    }
    // The full sum is a positive constant ⇒ the last entry must be False.
    debug_assert_eq!(chain.last(), Some(&Interpolant::False));
    Some(chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::VarId;
    use crate::simplex::{check_rational_with_certificate, FarkasCertificate};

    fn mk(e: LinExpr, r: Rel) -> LinearConstraint {
        match LinearConstraint::new(e, r) {
            NormalizedConstraint::Constraint(c) => c,
            other => panic!("trivial {other:?}"),
        }
    }

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    /// x0 = 0; x1 = x0 + 1; …; xn = x(n−1) + 1; xn ≤ n − 1: infeasible.
    fn ssa_chain(n: usize) -> Vec<Vec<LinearConstraint>> {
        let mut blocks = vec![vec![mk(LinExpr::var(v(0)), Rel::Eq0)]];
        for i in 0..n {
            let step = LinExpr::var(v(i as u32 + 1))
                .sub(&LinExpr::var(v(i as u32)))
                .sub(&LinExpr::constant(1));
            blocks.push(vec![mk(step, Rel::Eq0)]);
        }
        blocks.push(vec![mk(
            LinExpr::var(v(n as u32)).sub(&LinExpr::constant(n as i128 - 1)),
            Rel::Le0,
        )]);
        blocks
    }

    #[test]
    fn certificate_extraction_and_validation() {
        let x = v(0);
        let y = v(1);
        // x + y ≥ 5, x ≤ 1, y ≤ 2.
        let cs = vec![
            mk(
                LinExpr::constant(5)
                    .sub(&LinExpr::var(x))
                    .sub(&LinExpr::var(y)),
                Rel::Le0,
            ),
            mk(LinExpr::var(x).sub(&LinExpr::constant(1)), Rel::Le0),
            mk(LinExpr::var(y).sub(&LinExpr::constant(2)), Rel::Le0),
        ];
        match check_rational_with_certificate(&cs) {
            CertResult::Unsat(cert) => {
                assert!(cert.validate(&cs), "{cert:?}");
                assert!(cert.coefficients.len() >= 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn certificate_with_equalities() {
        let x = v(0);
        let y = v(1);
        // x = y, y = x + 1.
        let cs = vec![
            mk(LinExpr::var(x).sub(&LinExpr::var(y)), Rel::Eq0),
            mk(
                LinExpr::var(y)
                    .sub(&LinExpr::var(x))
                    .sub(&LinExpr::constant(1)),
                Rel::Eq0,
            ),
        ];
        match check_rational_with_certificate(&cs) {
            CertResult::Unsat(cert) => assert!(cert.validate(&cs), "{cert:?}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sat_systems_have_no_certificate() {
        let x = v(0);
        let cs = vec![mk(LinExpr::var(x).sub(&LinExpr::constant(3)), Rel::Le0)];
        assert!(matches!(
            check_rational_with_certificate(&cs),
            CertResult::Sat(_)
        ));
    }

    #[test]
    fn invalid_certificates_rejected() {
        let x = v(0);
        let cs = vec![mk(LinExpr::var(x), Rel::Le0)];
        // Sum is not a positive constant.
        let bogus = FarkasCertificate {
            coefficients: vec![(0, Rat::ONE)],
        };
        assert!(!bogus.validate(&cs));
        // Negative weight on a ≤-constraint.
        let negative = FarkasCertificate {
            coefficients: vec![(0, Rat::ONE.neg().unwrap())],
        };
        assert!(!negative.validate(&cs));
    }

    #[test]
    fn chain_shape_on_ssa_counter() {
        let blocks = ssa_chain(3);
        let chain = farkas_sequence_interpolants(&blocks).expect("infeasible");
        assert_eq!(chain.len(), blocks.len() + 1);
        assert_eq!(chain[0], Interpolant::True);
        assert_eq!(*chain.last().unwrap(), Interpolant::False);
        // The interior interpolants are single inequalities over the
        // current SSA version only — the "counting" shape.
        for (k, ip) in chain.iter().enumerate().skip(1).take(blocks.len() - 1) {
            let Interpolant::Constraint(c) = ip else {
                panic!("interior interpolant {k} is {ip:?}")
            };
            assert_eq!(
                c.expr().terms().len(),
                1,
                "expected a single-variable bound, got {c:?}"
            );
        }
    }

    #[test]
    fn chain_is_inductive() {
        // Validate {I_k} B_{k+1} {I_{k+1}} semantically: I_k ∧ B_{k+1} ∧
        // ¬I_{k+1} must be rationally infeasible.
        use crate::simplex::{check_rational, SimplexResult};
        let blocks = ssa_chain(4);
        let chain = farkas_sequence_interpolants(&blocks).expect("infeasible");
        for k in 0..blocks.len() {
            let mut system: Vec<LinearConstraint> = Vec::new();
            if let Interpolant::Constraint(c) = &chain[k] {
                system.push(c.clone());
            }
            if let Interpolant::False = &chain[k] {
                continue; // ⊥ implies everything
            }
            system.extend(blocks[k].iter().cloned());
            match &chain[k + 1] {
                Interpolant::True => continue,
                Interpolant::False => {
                    assert_eq!(
                        check_rational(&system),
                        SimplexResult::Unsat,
                        "step {k} must derive ⊥"
                    );
                }
                Interpolant::Constraint(c) => {
                    for neg in c.negate() {
                        let NormalizedConstraint::Constraint(n) = neg else {
                            continue;
                        };
                        let mut sys = system.clone();
                        sys.push(n);
                        assert_eq!(
                            check_rational(&sys),
                            SimplexResult::Unsat,
                            "step {k} not inductive"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn feasible_blocks_yield_none() {
        let x = v(0);
        let blocks = vec![vec![mk(
            LinExpr::var(x).sub(&LinExpr::constant(5)),
            Rel::Le0,
        )]];
        assert_eq!(farkas_sequence_interpolants(&blocks), None);
    }
}
